(* The VM instruction set: fixed-length, statically typed, mostly
   mirroring the IR instruction set with the type baked into the opcode
   (paper Section IV-A), plus macro-ops for the fused sequences of
   Section IV-F (checked arithmetic, GEP+load/store, compare+branch).

   Register values are stored in canonical form: every integer value
   occupies a full 8-byte slot, sign-extended from its declared width;
   booleans are 0/1; floats are IEEE-754 bits. Canonicalisation makes
   signed comparisons, bitwise ops and sign extensions width-
   independent, which keeps the opcode count near the paper's ~500
   rather than a full cross product. *)

type t =
  (* moves *)
  | Mov
  (* integer arithmetic, canonical sign-extended results *)
  | Add_i8
  | Add_i16
  | Add_i32
  | Add_i64
  | Sub_i8
  | Sub_i16
  | Sub_i32
  | Sub_i64
  | Mul_i8
  | Mul_i16
  | Mul_i32
  | Mul_i64
  | Div_i8
  | Div_i16
  | Div_i32
  | Div_i64
  | Rem_i8
  | Rem_i16
  | Rem_i32
  | Rem_i64
  | And64
  | Or64
  | Xor64
  | Shl_i8
  | Shl_i16
  | Shl_i32
  | Shl_i64
  | LShr_i8
  | LShr_i16
  | LShr_i32
  | LShr_i64
  | AShr64
  (* fused overflow-checked arithmetic (macro-ops; trap on overflow) *)
  | AddChk_i32
  | AddChk_i64
  | SubChk_i32
  | SubChk_i64
  | MulChk_i32
  | MulChk_i64
  (* overflow-flag computation (unfused fallback) *)
  | OvfAdd_i32
  | OvfAdd_i64
  | OvfSub_i32
  | OvfSub_i64
  | OvfMul_i32
  | OvfMul_i64
  (* float arithmetic *)
  | FAdd
  | FSub
  | FMul
  | FDiv
  (* integer comparisons; signed/eq are width-independent on canonical values *)
  | CmpEq
  | CmpNe
  | CmpSlt
  | CmpSle
  | CmpSgt
  | CmpSge
  | CmpUlt_i8
  | CmpUlt_i16
  | CmpUlt_i32
  | CmpUlt_i64
  | CmpUle_i8
  | CmpUle_i16
  | CmpUle_i32
  | CmpUle_i64
  | CmpUgt_i8
  | CmpUgt_i16
  | CmpUgt_i32
  | CmpUgt_i64
  | CmpUge_i8
  | CmpUge_i16
  | CmpUge_i32
  | CmpUge_i64
  (* float comparisons *)
  | FCmpEq
  | FCmpNe
  | FCmpLt
  | FCmpLe
  | FCmpGt
  | FCmpGe
  | SelectOp
  (* casts *)
  | Zext8
  | Zext16
  | Zext32
  | Trunc1
  | Trunc8
  | Trunc16
  | Trunc32
  | SiToFp
  | FpToSi
  (* memory *)
  | Load8
  | Load16
  | Load32
  | Load64
  | Store8
  | Store16
  | Store32
  | Store64
  | Gep
  | GepConst
  (* fused GEP + memory (macro-ops) *)
  | LoadIdx8
  | LoadIdx16
  | LoadIdx32
  | LoadIdx64
  | StoreIdx8
  | StoreIdx16
  | StoreIdx32
  | StoreIdx64
  (* control flow *)
  | Jmp
  | CondJmp
  (* fused compare + branch (macro-ops; a,b compared; c/d targets) *)
  | JmpEq
  | JmpNe
  | JmpSlt
  | JmpSle
  | JmpSgt
  | JmpSge
  | RetVal
  | RetVoid
  | AbortOp
  (* runtime calls; lit = function-table index *)
  | CallV0
  | CallV1
  | CallV2
  | CallV3
  | CallV4
  | CallV5
  | CallR0
  | CallR1
  | CallR2
  | CallR3
  | CallR4

let to_string = function
  | Mov -> "mov"
  | Add_i8 -> "add_i8"
  | Add_i16 -> "add_i16"
  | Add_i32 -> "add_i32"
  | Add_i64 -> "add_i64"
  | Sub_i8 -> "sub_i8"
  | Sub_i16 -> "sub_i16"
  | Sub_i32 -> "sub_i32"
  | Sub_i64 -> "sub_i64"
  | Mul_i8 -> "mul_i8"
  | Mul_i16 -> "mul_i16"
  | Mul_i32 -> "mul_i32"
  | Mul_i64 -> "mul_i64"
  | Div_i8 -> "div_i8"
  | Div_i16 -> "div_i16"
  | Div_i32 -> "div_i32"
  | Div_i64 -> "div_i64"
  | Rem_i8 -> "rem_i8"
  | Rem_i16 -> "rem_i16"
  | Rem_i32 -> "rem_i32"
  | Rem_i64 -> "rem_i64"
  | And64 -> "and"
  | Or64 -> "or"
  | Xor64 -> "xor"
  | Shl_i8 -> "shl_i8"
  | Shl_i16 -> "shl_i16"
  | Shl_i32 -> "shl_i32"
  | Shl_i64 -> "shl_i64"
  | LShr_i8 -> "lshr_i8"
  | LShr_i16 -> "lshr_i16"
  | LShr_i32 -> "lshr_i32"
  | LShr_i64 -> "lshr_i64"
  | AShr64 -> "ashr"
  | AddChk_i32 -> "add_chk_i32"
  | AddChk_i64 -> "add_chk_i64"
  | SubChk_i32 -> "sub_chk_i32"
  | SubChk_i64 -> "sub_chk_i64"
  | MulChk_i32 -> "mul_chk_i32"
  | MulChk_i64 -> "mul_chk_i64"
  | OvfAdd_i32 -> "ovf_add_i32"
  | OvfAdd_i64 -> "ovf_add_i64"
  | OvfSub_i32 -> "ovf_sub_i32"
  | OvfSub_i64 -> "ovf_sub_i64"
  | OvfMul_i32 -> "ovf_mul_i32"
  | OvfMul_i64 -> "ovf_mul_i64"
  | FAdd -> "fadd"
  | FSub -> "fsub"
  | FMul -> "fmul"
  | FDiv -> "fdiv"
  | CmpEq -> "cmp_eq"
  | CmpNe -> "cmp_ne"
  | CmpSlt -> "cmp_slt"
  | CmpSle -> "cmp_sle"
  | CmpSgt -> "cmp_sgt"
  | CmpSge -> "cmp_sge"
  | CmpUlt_i8 -> "cmp_ult_i8"
  | CmpUlt_i16 -> "cmp_ult_i16"
  | CmpUlt_i32 -> "cmp_ult_i32"
  | CmpUlt_i64 -> "cmp_ult_i64"
  | CmpUle_i8 -> "cmp_ule_i8"
  | CmpUle_i16 -> "cmp_ule_i16"
  | CmpUle_i32 -> "cmp_ule_i32"
  | CmpUle_i64 -> "cmp_ule_i64"
  | CmpUgt_i8 -> "cmp_ugt_i8"
  | CmpUgt_i16 -> "cmp_ugt_i16"
  | CmpUgt_i32 -> "cmp_ugt_i32"
  | CmpUgt_i64 -> "cmp_ugt_i64"
  | CmpUge_i8 -> "cmp_uge_i8"
  | CmpUge_i16 -> "cmp_uge_i16"
  | CmpUge_i32 -> "cmp_uge_i32"
  | CmpUge_i64 -> "cmp_uge_i64"
  | FCmpEq -> "fcmp_eq"
  | FCmpNe -> "fcmp_ne"
  | FCmpLt -> "fcmp_lt"
  | FCmpLe -> "fcmp_le"
  | FCmpGt -> "fcmp_gt"
  | FCmpGe -> "fcmp_ge"
  | SelectOp -> "select"
  | Zext8 -> "zext_i8"
  | Zext16 -> "zext_i16"
  | Zext32 -> "zext_i32"
  | Trunc1 -> "trunc_i1"
  | Trunc8 -> "trunc_i8"
  | Trunc16 -> "trunc_i16"
  | Trunc32 -> "trunc_i32"
  | SiToFp -> "sitofp"
  | FpToSi -> "fptosi"
  | Load8 -> "load_i8"
  | Load16 -> "load_i16"
  | Load32 -> "load_i32"
  | Load64 -> "load_i64"
  | Store8 -> "store_i8"
  | Store16 -> "store_i16"
  | Store32 -> "store_i32"
  | Store64 -> "store_i64"
  | Gep -> "gep"
  | GepConst -> "gep_const"
  | LoadIdx8 -> "load_idx_i8"
  | LoadIdx16 -> "load_idx_i16"
  | LoadIdx32 -> "load_idx_i32"
  | LoadIdx64 -> "load_idx_i64"
  | StoreIdx8 -> "store_idx_i8"
  | StoreIdx16 -> "store_idx_i16"
  | StoreIdx32 -> "store_idx_i32"
  | StoreIdx64 -> "store_idx_i64"
  | Jmp -> "jmp"
  | CondJmp -> "condjmp"
  | JmpEq -> "jmp_eq"
  | JmpNe -> "jmp_ne"
  | JmpSlt -> "jmp_slt"
  | JmpSle -> "jmp_sle"
  | JmpSgt -> "jmp_sgt"
  | JmpSge -> "jmp_sge"
  | RetVal -> "ret"
  | RetVoid -> "ret_void"
  | AbortOp -> "abort"
  | CallV0 -> "call_v0"
  | CallV1 -> "call_v1"
  | CallV2 -> "call_v2"
  | CallV3 -> "call_v3"
  | CallV4 -> "call_v4"
  | CallV5 -> "call_v5"
  | CallR0 -> "call_r0"
  | CallR1 -> "call_r1"
  | CallR2 -> "call_r2"
  | CallR3 -> "call_r3"
  | CallR4 -> "call_r4"

(* All constructors are constant, so their runtime representation is a
   dense range of ints; enumerating through it keeps [all] complete by
   construction. CallR4 must remain the last constructor. *)
let count = 1 + (Obj.magic CallR4 : int)

let all : t list = List.init count (fun i : t -> Obj.magic i)

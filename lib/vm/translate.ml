exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* Growable instruction buffer. *)
module Buf = struct
  type t = { mutable arr : Bytecode.insn array; mutable len : int }

  let nop : Bytecode.insn =
    { op = Opcode.RetVoid; a = 0; b = 0; c = 0; d = 0; e = 0; lit = 0L }

  let create () = { arr = Array.make 64 nop; len = 0 }

  let push t i =
    if t.len >= Array.length t.arr then begin
      let bigger = Array.make (2 * Array.length t.arr) nop in
      Array.blit t.arr 0 bigger 0 t.len;
      t.arr <- bigger
    end;
    t.arr.(t.len) <- i;
    t.len <- t.len + 1

  let contents t = Array.sub t.arr 0 t.len
end

let insn ?(a = 0) ?(b = 0) ?(c = 0) ?(d = 0) ?(e = 0) ?(lit = 0L) op : Bytecode.insn =
  { op; a; b; c; d; e; lit }

(* An abort-only block (no φs, no instructions) is a fusion-eligible
   overflow trap target. *)
let abort_only (f : Func.t) blk_id =
  let b = Func.block f blk_id in
  Array.length b.Block.phis = 0
  && Array.length b.Block.instrs = 0
  && match b.Block.term with Instr.Abort _ -> true | _ -> false

let width_of = function
  | Types.I1 | Types.I8 -> 8
  | Types.I16 -> 16
  | Types.I32 -> 32
  | Types.I64 | Types.Ptr -> 64
  | Types.F64 -> unsupported "float width in integer op"

let translate ?(strategy = Regalloc.Loop_aware) ?(fuse = true) ~symbols (f : Func.t) =
  let n_params = Array.length f.Func.params in
  (* --- constant pool ---------------------------------------------- *)
  let const_idx : (int64, int) Hashtbl.t = Hashtbl.create 64 in
  let pool = ref [ 1L; 0L ] (* reversed *) in
  let n_pool = ref 2 in
  Hashtbl.replace const_idx 0L 0;
  Hashtbl.replace const_idx 1L 1;
  let intern bits =
    match Hashtbl.find_opt const_idx bits with
    | Some i -> i
    | None ->
      let i = !n_pool in
      Hashtbl.replace const_idx bits i;
      pool := bits :: !pool;
      incr n_pool;
      i
  in
  (* --- use counts (for fusion legality) and constant scan ---------- *)
  let use_counts = Array.make f.Func.n_values 0 in
  let scan_value = function
    | Instr.Vreg v -> use_counts.(v) <- use_counts.(v) + 1
    | Instr.Imm n -> ignore (intern n)
    | Instr.Fimm x -> ignore (intern (Int64.bits_of_float x))
  in
  Array.iter
    (fun (b : Block.t) ->
      Array.iter
        (fun (p : Instr.phi) -> Array.iter (fun (_, v) -> scan_value v) p.incoming)
        b.Block.phis;
      Array.iter (fun i -> List.iter scan_value (Instr.operands i)) b.Block.instrs;
      match b.Block.term with
      | Instr.CondBr { cond; _ } -> scan_value cond
      | Instr.Ret (Some v) -> scan_value v
      | Instr.Br _ | Instr.Ret None | Instr.Abort _ -> ())
    f.Func.blocks;
  let const_pool = Array.of_list (List.rev !pool) in
  (* --- register layout -------------------------------------------- *)
  let param_offsets = Array.init n_params (fun i -> 8 * (Array.length const_pool + i)) in
  let base_offset = 8 * (Array.length const_pool + n_params) in
  let dom = Dom.compute f in
  let loops = Loops.compute f dom in
  let alloc = Regalloc.allocate strategy f loops ~base_offset ~param_offsets in
  let reg_of = function
    | Instr.Vreg v ->
      let off = alloc.Regalloc.slot_offset.(v) in
      if off < 0 then unsupported "value %%%d has no register" v;
      off
    | Instr.Imm n -> 8 * Hashtbl.find const_idx n
    | Instr.Fimm x -> 8 * Hashtbl.find const_idx (Int64.bits_of_float x)
  in
  (* --- runtime symbol table --------------------------------------- *)
  let rt_idx : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rt_fns = ref [] in
  let n_rt = ref 0 in
  let resolve sym =
    match Hashtbl.find_opt rt_idx sym with
    | Some i -> i
    | None -> (
      match symbols sym with
      | None -> unsupported "unresolved runtime symbol %s" sym
      | Some fn ->
        let i = !n_rt in
        Hashtbl.replace rt_idx sym i;
        rt_fns := fn :: !rt_fns;
        incr n_rt;
        i)
  in
  (* --- abort messages ---------------------------------------------- *)
  let msg_idx : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let msgs = ref [] in
  let n_msgs = ref 0 in
  let message m =
    match Hashtbl.find_opt msg_idx m with
    | Some i -> i
    | None ->
      let i = !n_msgs in
      Hashtbl.replace msg_idx m i;
      msgs := m :: !msgs;
      incr n_msgs;
      i
  in
  (* --- emission ----------------------------------------------------- *)
  let buf = Buf.create () in
  let block_start = Array.make (Func.n_blocks f) (-1) in
  let fixups = ref [] in
  (* (code index, which field, target block) *)
  let jump_to ?(field = `A) target =
    fixups := (buf.Buf.len, field, target) :: !fixups
  in
  let emit = Buf.push buf in
  let emit_phi_copies src_block target =
    let tb = Func.block f target in
    Array.iter
      (fun (p : Instr.phi) ->
        match Array.find_opt (fun (pred, _) -> pred = src_block) p.incoming with
        | None -> unsupported "phi in block %d lacks incoming from %d" target src_block
        | Some (_, v) ->
          let dst = reg_of (Instr.Vreg p.dst) and src = reg_of v in
          if dst <> src then emit (insn Opcode.Mov ~a:dst ~b:src))
      tb.Block.phis
  in
  let binop_op (op : Instr.binop) ty : Opcode.t =
    let w = width_of ty in
    match (op, w) with
    | Instr.Add, 8 -> Add_i8
    | Instr.Add, 16 -> Add_i16
    | Instr.Add, 32 -> Add_i32
    | Instr.Add, 64 -> Add_i64
    | Instr.Sub, 8 -> Sub_i8
    | Instr.Sub, 16 -> Sub_i16
    | Instr.Sub, 32 -> Sub_i32
    | Instr.Sub, 64 -> Sub_i64
    | Instr.Mul, 8 -> Mul_i8
    | Instr.Mul, 16 -> Mul_i16
    | Instr.Mul, 32 -> Mul_i32
    | Instr.Mul, 64 -> Mul_i64
    | Instr.Div, 8 -> Div_i8
    | Instr.Div, 16 -> Div_i16
    | Instr.Div, 32 -> Div_i32
    | Instr.Div, 64 -> Div_i64
    | Instr.Rem, 8 -> Rem_i8
    | Instr.Rem, 16 -> Rem_i16
    | Instr.Rem, 32 -> Rem_i32
    | Instr.Rem, 64 -> Rem_i64
    | Instr.And, _ -> And64
    | Instr.Or, _ -> Or64
    | Instr.Xor, _ -> Xor64
    | Instr.Shl, 8 -> Shl_i8
    | Instr.Shl, 16 -> Shl_i16
    | Instr.Shl, 32 -> Shl_i32
    | Instr.Shl, 64 -> Shl_i64
    | Instr.LShr, 8 -> LShr_i8
    | Instr.LShr, 16 -> LShr_i16
    | Instr.LShr, 32 -> LShr_i32
    | Instr.LShr, 64 -> LShr_i64
    | Instr.AShr, _ -> AShr64
    | _ -> unsupported "binop width"
  in
  let icmp_op (op : Instr.icmp) ty : Opcode.t =
    let w = width_of ty in
    match (op, w) with
    | Instr.Eq, _ -> CmpEq
    | Instr.Ne, _ -> CmpNe
    | Instr.Slt, _ -> CmpSlt
    | Instr.Sle, _ -> CmpSle
    | Instr.Sgt, _ -> CmpSgt
    | Instr.Sge, _ -> CmpSge
    | Instr.Ult, 8 -> CmpUlt_i8
    | Instr.Ult, 16 -> CmpUlt_i16
    | Instr.Ult, 32 -> CmpUlt_i32
    | Instr.Ult, 64 -> CmpUlt_i64
    | Instr.Ule, 8 -> CmpUle_i8
    | Instr.Ule, 16 -> CmpUle_i16
    | Instr.Ule, 32 -> CmpUle_i32
    | Instr.Ule, 64 -> CmpUle_i64
    | Instr.Ugt, 8 -> CmpUgt_i8
    | Instr.Ugt, 16 -> CmpUgt_i16
    | Instr.Ugt, 32 -> CmpUgt_i32
    | Instr.Ugt, 64 -> CmpUgt_i64
    | Instr.Uge, 8 -> CmpUge_i8
    | Instr.Uge, 16 -> CmpUge_i16
    | Instr.Uge, 32 -> CmpUge_i32
    | Instr.Uge, 64 -> CmpUge_i64
    | _ -> unsupported "icmp width"
  in
  let load_op ty : Opcode.t =
    match ty with
    | Types.I1 | Types.I8 -> Load8
    | Types.I16 -> Load16
    | Types.I32 -> Load32
    | Types.I64 | Types.Ptr | Types.F64 -> Load64
  in
  let store_op ty : Opcode.t =
    match ty with
    | Types.I1 | Types.I8 -> Store8
    | Types.I16 -> Store16
    | Types.I32 -> Store32
    | Types.I64 | Types.Ptr | Types.F64 -> Store64
  in
  let loadidx_op ty : Opcode.t =
    match ty with
    | Types.I1 | Types.I8 -> LoadIdx8
    | Types.I16 -> LoadIdx16
    | Types.I32 -> LoadIdx32
    | Types.I64 | Types.Ptr | Types.F64 -> LoadIdx64
  in
  let storeidx_op ty : Opcode.t =
    match ty with
    | Types.I1 | Types.I8 -> StoreIdx8
    | Types.I16 -> StoreIdx16
    | Types.I32 -> StoreIdx32
    | Types.I64 | Types.Ptr | Types.F64 -> StoreIdx64
  in
  let emit_instr (i : Instr.t) =
    match i with
    | Instr.Binop { op; ty; dst; a; b } ->
      emit (insn (binop_op op ty) ~a:(reg_of (Vreg dst)) ~b:(reg_of a) ~c:(reg_of b))
    | Instr.OvfFlag { op; ty; dst; a; b } ->
      let o : Opcode.t =
        match (op, width_of ty) with
        | Instr.OAdd, 32 -> OvfAdd_i32
        | Instr.OAdd, 64 -> OvfAdd_i64
        | Instr.OSub, 32 -> OvfSub_i32
        | Instr.OSub, 64 -> OvfSub_i64
        | Instr.OMul, 32 -> OvfMul_i32
        | Instr.OMul, 64 -> OvfMul_i64
        | _ -> unsupported "overflow check width"
      in
      emit (insn o ~a:(reg_of (Vreg dst)) ~b:(reg_of a) ~c:(reg_of b))
    | Instr.Fbinop { op; dst; a; b } ->
      let o : Opcode.t =
        match op with Instr.FAdd -> FAdd | FSub -> FSub | FMul -> FMul | FDiv -> FDiv
      in
      emit (insn o ~a:(reg_of (Vreg dst)) ~b:(reg_of a) ~c:(reg_of b))
    | Instr.Icmp { op; ty; dst; a; b } ->
      emit (insn (icmp_op op ty) ~a:(reg_of (Vreg dst)) ~b:(reg_of a) ~c:(reg_of b))
    | Instr.Fcmp { op; dst; a; b } ->
      let o : Opcode.t =
        match op with
        | Instr.FEq -> FCmpEq
        | FNe -> FCmpNe
        | FLt -> FCmpLt
        | FLe -> FCmpLe
        | FGt -> FCmpGt
        | FGe -> FCmpGe
      in
      emit (insn o ~a:(reg_of (Vreg dst)) ~b:(reg_of a) ~c:(reg_of b))
    | Instr.Select { dst; cond; a; b; _ } ->
      emit
        (insn Opcode.SelectOp ~a:(reg_of (Vreg dst)) ~b:(reg_of cond) ~c:(reg_of a)
           ~d:(reg_of b))
    | Instr.Cast { op; from_ty; to_ty; dst; v } -> (
      let d = reg_of (Vreg dst) and s = reg_of v in
      match op with
      | Instr.Bitcast -> emit (insn Opcode.Mov ~a:d ~b:s)
      | Instr.SiToFp -> emit (insn Opcode.SiToFp ~a:d ~b:s)
      | Instr.FpToSi -> emit (insn Opcode.FpToSi ~a:d ~b:s)
      | Instr.Zext -> (
        match from_ty with
        | Types.I1 | Types.I64 | Types.Ptr -> emit (insn Opcode.Mov ~a:d ~b:s)
        | Types.I8 -> emit (insn Opcode.Zext8 ~a:d ~b:s)
        | Types.I16 -> emit (insn Opcode.Zext16 ~a:d ~b:s)
        | Types.I32 -> emit (insn Opcode.Zext32 ~a:d ~b:s)
        | Types.F64 -> unsupported "zext from float")
      | Instr.Sext -> (
        match from_ty with
        | Types.I1 ->
          (* sext i1 = 0 - v on canonical 0/1 *)
          emit (insn Opcode.Sub_i64 ~a:d ~b:0 ~c:s)
        | _ -> emit (insn Opcode.Mov ~a:d ~b:s))
      | Instr.Trunc -> (
        match to_ty with
        | Types.I1 -> emit (insn Opcode.Trunc1 ~a:d ~b:s)
        | Types.I8 -> emit (insn Opcode.Trunc8 ~a:d ~b:s)
        | Types.I16 -> emit (insn Opcode.Trunc16 ~a:d ~b:s)
        | Types.I32 -> emit (insn Opcode.Trunc32 ~a:d ~b:s)
        | Types.I64 | Types.Ptr -> emit (insn Opcode.Mov ~a:d ~b:s)
        | Types.F64 -> unsupported "trunc to float"))
    | Instr.Load { ty; dst; addr } ->
      emit (insn (load_op ty) ~a:(reg_of (Vreg dst)) ~b:(reg_of addr))
    | Instr.Store { ty; addr; v } -> emit (insn (store_op ty) ~a:(reg_of v) ~b:(reg_of addr))
    | Instr.Gep { dst; base; index; scale; offset } -> (
      match index with
      | Instr.Imm n ->
        emit
          (insn Opcode.GepConst ~a:(reg_of (Vreg dst)) ~b:(reg_of base)
             ~lit:(Int64.of_int ((Int64.to_int n * scale) + offset)))
      | _ ->
        emit
          (insn Opcode.Gep ~a:(reg_of (Vreg dst)) ~b:(reg_of base) ~c:(reg_of index)
             ~lit:(Bytecode.pack_scale_offset ~scale ~offset)))
    | Instr.Call { dst; sym; args; _ } -> (
      let idx = Int64.of_int (resolve sym) in
      let arg i = reg_of args.(i) in
      match (dst, Array.length args) with
      | None, 0 -> emit (insn Opcode.CallV0 ~lit:idx)
      | None, 1 -> emit (insn Opcode.CallV1 ~a:(arg 0) ~lit:idx)
      | None, 2 -> emit (insn Opcode.CallV2 ~a:(arg 0) ~b:(arg 1) ~lit:idx)
      | None, 3 -> emit (insn Opcode.CallV3 ~a:(arg 0) ~b:(arg 1) ~c:(arg 2) ~lit:idx)
      | None, 4 ->
        emit (insn Opcode.CallV4 ~a:(arg 0) ~b:(arg 1) ~c:(arg 2) ~d:(arg 3) ~lit:idx)
      | None, 5 ->
        emit
          (insn Opcode.CallV5 ~a:(arg 0) ~b:(arg 1) ~c:(arg 2) ~d:(arg 3) ~e:(arg 4)
             ~lit:idx)
      | Some (d, _), 0 -> emit (insn Opcode.CallR0 ~a:(reg_of (Vreg d)) ~lit:idx)
      | Some (d, _), 1 -> emit (insn Opcode.CallR1 ~a:(reg_of (Vreg d)) ~b:(arg 0) ~lit:idx)
      | Some (d, _), 2 ->
        emit (insn Opcode.CallR2 ~a:(reg_of (Vreg d)) ~b:(arg 0) ~c:(arg 1) ~lit:idx)
      | Some (d, _), 3 ->
        emit
          (insn Opcode.CallR3 ~a:(reg_of (Vreg d)) ~b:(arg 0) ~c:(arg 1) ~d:(arg 2) ~lit:idx)
      | Some (d, _), 4 ->
        emit
          (insn Opcode.CallR4 ~a:(reg_of (Vreg d)) ~b:(arg 0) ~c:(arg 1) ~d:(arg 2)
             ~e:(arg 3) ~lit:idx)
      | _ -> unsupported "call arity for %s" sym)
  in
  let emit_terminator src (term : Instr.terminator) =
    match term with
    | Instr.Br t ->
      emit_phi_copies src t;
      jump_to t;
      emit (insn Opcode.Jmp)
    | Instr.CondBr { cond; if_true; if_false } ->
      emit_phi_copies src if_true;
      emit_phi_copies src if_false;
      jump_to ~field:`B if_true;
      jump_to ~field:`C if_false;
      emit (insn Opcode.CondJmp ~a:(reg_of cond))
    | Instr.Ret (Some v) -> emit (insn Opcode.RetVal ~a:(reg_of v))
    | Instr.Ret None -> emit (insn Opcode.RetVoid)
    | Instr.Abort m -> emit (insn Opcode.AbortOp ~a:(message m))
  in
  Array.iter
    (fun (blk : Block.t) ->
      let bid = blk.Block.id in
      block_start.(bid) <- buf.Buf.len;
      let instrs = blk.Block.instrs in
      let n = Array.length instrs in
      let i = ref 0 in
      let term_done = ref false in
      while !i < n do
        let this = instrs.(!i) in
        let fused =
          if not fuse then false
          else
            match this with
            (* gep + load/store fusion *)
            | Instr.Gep { dst; base; index; scale; offset } when !i + 1 < n -> (
              match instrs.(!i + 1) with
              | Instr.Load { ty; dst = ldst; addr = Instr.Vreg a } when a = dst && use_counts.(dst) = 1 ->
                emit
                  (insn (loadidx_op ty) ~a:(reg_of (Vreg ldst)) ~b:(reg_of base)
                     ~c:(reg_of index) ~lit:(Bytecode.pack_scale_offset ~scale ~offset));
                i := !i + 2;
                true
              | Instr.Store { ty; addr = Instr.Vreg a; v } when a = dst && use_counts.(dst) = 1 ->
                emit
                  (insn (storeidx_op ty) ~a:(reg_of v) ~b:(reg_of base) ~c:(reg_of index)
                     ~lit:(Bytecode.pack_scale_offset ~scale ~offset));
                i := !i + 2;
                true
              | _ -> false)
            (* overflow-check fusion: binop; ovf; condbr-to-abort *)
            | Instr.Binop { op = bop; ty; dst; a; b } when !i + 2 = n -> (
              match (instrs.(!i + 1), blk.Block.term) with
              | ( Instr.OvfFlag { op = oop; ty = oty; dst = fdst; a = oa; b = ob },
                  Instr.CondBr { cond = Instr.Vreg c; if_true; if_false } )
                when c = fdst && use_counts.(fdst) = 1 && Types.equal ty oty
                     && Instr.value_equal a oa && Instr.value_equal b ob
                     && abort_only f if_true
                     && (match (bop, oop) with
                        | Instr.Add, Instr.OAdd | Instr.Sub, Instr.OSub | Instr.Mul, Instr.OMul
                          ->
                          true
                        | _ -> false)
                     && (match width_of ty with 32 | 64 -> true | _ -> false) ->
                let o : Opcode.t =
                  match (bop, width_of ty) with
                  | Instr.Add, 32 -> AddChk_i32
                  | Instr.Add, 64 -> AddChk_i64
                  | Instr.Sub, 32 -> SubChk_i32
                  | Instr.Sub, 64 -> SubChk_i64
                  | Instr.Mul, 32 -> MulChk_i32
                  | Instr.Mul, 64 -> MulChk_i64
                  | _ -> assert false
                in
                emit (insn o ~a:(reg_of (Vreg dst)) ~b:(reg_of a) ~c:(reg_of b));
                emit_phi_copies bid if_false;
                jump_to if_false;
                emit (insn Opcode.Jmp);
                term_done := true;
                i := !i + 2;
                true
              | _ -> false)
            (* cmp + condbr fusion *)
            | Instr.Icmp { op; ty; dst; a; b } when !i + 1 = n -> (
              match blk.Block.term with
              | Instr.CondBr { cond = Instr.Vreg c; if_true; if_false }
                when c = dst && use_counts.(dst) = 1 -> (
                let fused_op : Opcode.t option =
                  match op with
                  | Instr.Eq -> Some JmpEq
                  | Instr.Ne -> Some JmpNe
                  | Instr.Slt -> Some JmpSlt
                  | Instr.Sle -> Some JmpSle
                  | Instr.Sgt -> Some JmpSgt
                  | Instr.Sge -> Some JmpSge
                  | _ -> None
                in
                ignore ty;
                match fused_op with
                | Some o ->
                  emit_phi_copies bid if_true;
                  emit_phi_copies bid if_false;
                  jump_to ~field:`C if_true;
                  jump_to ~field:`D if_false;
                  emit (insn o ~a:(reg_of a) ~b:(reg_of b));
                  term_done := true;
                  incr i;
                  true
                | None -> false)
              | _ -> false)
            | _ -> false
        in
        if not fused then begin
          emit_instr this;
          incr i
        end
      done;
      if not !term_done then emit_terminator bid blk.Block.term)
    f.Func.blocks;
  (* --- fixups ------------------------------------------------------- *)
  let code = Buf.contents buf in
  List.iter
    (fun (idx, field, target) ->
      let t = block_start.(target) in
      assert (t >= 0);
      let i = code.(idx) in
      code.(idx) <-
        (match field with
        | `A -> { i with Bytecode.a = t }
        | `B -> { i with Bytecode.b = t }
        | `C -> { i with Bytecode.c = t }
        | `D -> { i with Bytecode.d = t }))
    !fixups;
  let prog =
    {
      Bytecode.name = f.Func.name;
      code;
      n_reg_bytes = alloc.Regalloc.n_reg_bytes;
      const_pool;
      param_offsets;
      rt_table = Array.of_list (List.rev !rt_fns);
      messages = Array.of_list (List.rev !msgs);
      src_instr_count = Func.n_instrs f;
    }
  in
  (* Under AEQ_VERIFY, certify our own output: structural/type-state
     checks on the emitted program plus the liveness cross-check on
     the allocation we actually used. *)
  if Aeq_util.Verify_mode.enabled () then begin
    let ds =
      Bc_verify.check_program prog
      @ Bc_verify.check_allocation f ~slot_offset:alloc.Regalloc.slot_offset
    in
    if ds <> [] then raise (Bc_verify.Rejected (Bc_verify.report f.Func.name ds))
  end;
  prog

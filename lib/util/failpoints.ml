exception Injected of string

exception Injected_crash of string

(* [Injected_crash] deliberately escapes the structured-error
   discipline: every layer that converts exceptions into [Query_error]
   must let it pass, so it reaches (and kills) the hosting domain —
   that is the whole point of the [Crash] action. [Fun.protect]
   finalisers along the unwind may re-wrap it; [is_crash] sees through
   the wrapping. *)
let rec is_crash = function
  | Injected_crash _ -> true
  | Fun.Finally_raised e -> is_crash e
  | _ -> false

let () =
  Printexc.register_printer (function
    | Injected_crash site -> Some ("injected domain crash at " ^ site)
    | _ -> None)

type action = Fail | Delay of float | Prob_fail of float | Crash

type entry = {
  action : action;
  on_hit : int;
  persistent : bool;
  hits : int Atomic.t;
  fired : int Atomic.t;
}

(* Registry mutations take the lock; [hit] reads it only after the
   lock-free [armed] check says at least one site is active, so the
   per-morsel / per-alloc cost of a disarmed registry is one atomic
   load. *)
let () =
  Aeq_race.declare "util.failpoints.registry"
    (Aeq_race.Lock "util.failpoints.lock")

let lock = Aeq_race.Lock.create "util.failpoints.lock"

let registry_loc = Aeq_race.locate "util.failpoints.registry"

let table : (string, entry) Hashtbl.t = Hashtbl.create 8

(* Every site compiled into the engine. Arming a name outside this
   catalog is rejected loudly: a typo'd site used to arm nothing and
   the chaos run silently tested the happy path. Tests exercising the
   registry itself extend the catalog with [register_site]. *)
let builtin_sites =
  [
    "compile.unopt";
    "compile.opt";
    "compile.singleflight";
    "driver.morsel";
    "arena.alloc";
    "arena.lease";
    "arena.release";
    "pool.pick";
    "sched.dispatch";
    "sched.watchdog";
    "net.accept";
    "net.read";
    "net.write";
  ]

let extra_sites : (string, unit) Hashtbl.t = Hashtbl.create 4

let known_site site =
  List.mem site builtin_sites || Hashtbl.mem extra_sites site

let valid_sites () =
  builtin_sites @ List.of_seq (Hashtbl.to_seq_keys extra_sites)

let check_site site =
  if not (known_site site) then
    invalid_arg
      (Printf.sprintf "Failpoints: unknown site %S (valid sites: %s)" site
         (String.concat ", " (List.sort compare (valid_sites ()))))

(* One PRNG for every probabilistic site, drawn under the registry
   lock: chaos runs are reproducible given the seed and a fixed
   interleaving, and at worst statistically stable across
   interleavings. *)
let prng = ref (Prng.create 0x5EEDFA117L)

let armed_count = Atomic.make 0

let armed () = Atomic.get armed_count > 0

let locked f = Aeq_race.Lock.with_ lock f

let set_seed seed =
  locked (fun () ->
      Aeq_race.write ~site:"failpoints.set_seed" registry_loc;
      prng := Prng.create seed)

let register_site site =
  locked (fun () ->
      Aeq_race.write ~site:"failpoints.register_site" registry_loc;
      Hashtbl.replace extra_sites site ())

let activate ?(on_hit = 1) ?(persistent = true) site action =
  check_site site;
  if on_hit < 1 then invalid_arg "Failpoints.activate: on_hit must be >= 1";
  (match action with
  | Prob_fail p when not (p >= 0.0 && p <= 1.0) ->
    invalid_arg "Failpoints.activate: probability must be in [0,1]"
  | _ -> ());
  locked (fun () ->
      Aeq_race.write ~site:"failpoints.activate" registry_loc;
      if not (Hashtbl.mem table site) then Atomic.incr armed_count;
      Hashtbl.replace table site
        {
          action;
          on_hit;
          persistent;
          hits = Atomic.make 0;
          fired = Atomic.make 0;
        })

let deactivate site =
  locked (fun () ->
      Aeq_race.write ~site:"failpoints.deactivate" registry_loc;
      if Hashtbl.mem table site then begin
        Hashtbl.remove table site;
        Atomic.decr armed_count
      end)

let clear () =
  locked (fun () ->
      Aeq_race.write ~site:"failpoints.clear" registry_loc;
      Hashtbl.reset table;
      Atomic.set armed_count 0)

let find site =
  locked (fun () ->
      Aeq_race.read ~site:"failpoints.find" registry_loc;
      Hashtbl.find_opt table site)

let hits site = match find site with Some e -> Atomic.get e.hits | None -> 0

let fired site = match find site with Some e -> Atomic.get e.fired | None -> 0

let hit site =
  if armed () then
    match find site with
    | None -> ()
    | Some e ->
      let n = 1 + Atomic.fetch_and_add e.hits 1 in
      let fire = if e.persistent then n >= e.on_hit else n = e.on_hit in
      if fire then begin
        match e.action with
        | Fail ->
          Atomic.incr e.fired;
          raise (Injected site)
        | Delay s ->
          Atomic.incr e.fired;
          Unix.sleepf s
        | Prob_fail p ->
          (* draw under the lock; the coin decides whether this hit
             counts as fired at all *)
          let draw =
            locked (fun () ->
                Aeq_race.write ~site:"failpoints.draw" registry_loc;
                Prng.float !prng 1.0)
          in
          if draw < p then begin
            Atomic.incr e.fired;
            raise (Injected site)
          end
        | Crash ->
          Atomic.incr e.fired;
          raise (Injected_crash site)
      end

(* "site=fail", "site=fail@3", "site=crash", "site=delay:0.01",
   "site=delay:0.01@2", "site=p:0.25", joined by ',' or ';'. "@N"
   makes the site one-shot on its Nth hit; without it the site fires
   on every hit. "p:F" fails each hit with probability F (chaos mode);
   "crash" raises the non-Query_error [Injected_crash], killing the
   hosting domain unless a supervisor contains it. *)
let set_from_string spec =
  let bad part = invalid_arg ("Failpoints: cannot parse \"" ^ part ^ "\"") in
  String.split_on_char ',' (String.map (fun c -> if c = ';' then ',' else c) spec)
  |> List.iter (fun part ->
         let part = String.trim part in
         if part <> "" then
           match String.index_opt part '=' with
           | None -> bad part
           | Some i ->
             let site = String.sub part 0 i in
             let rhs = String.sub part (i + 1) (String.length part - i - 1) in
             let act, on_hit =
               match String.index_opt rhs '@' with
               | None -> (rhs, None)
               | Some j ->
                 let n = String.sub rhs (j + 1) (String.length rhs - j - 1) in
                 (match int_of_string_opt n with
                 | Some n when n >= 1 -> (String.sub rhs 0 j, Some n)
                 | _ -> bad part)
             in
             let action =
               if act = "fail" then Fail
               else if act = "crash" then Crash
               else if String.length act > 6 && String.sub act 0 6 = "delay:" then
                 match
                   float_of_string_opt (String.sub act 6 (String.length act - 6))
                 with
                 | Some s when s >= 0.0 -> Delay s
                 | _ -> bad part
               else if String.length act > 2 && String.sub act 0 2 = "p:" then
                 match float_of_string_opt (String.sub act 2 (String.length act - 2)) with
                 | Some p when p >= 0.0 && p <= 1.0 -> Prob_fail p
                 | _ -> bad part
               else bad part
             in
             (match on_hit with
             | None -> activate site action
             | Some n -> activate ~on_hit:n ~persistent:false site action))

let env_var = "AEQ_FAILPOINTS"

let () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some spec -> (
    try set_from_string spec
    with Invalid_argument m -> Printf.eprintf "warning: %s ignored: %s\n%!" env_var m)

(** An interruptible timed wait (self-pipe + [select]).

    The stdlib [Condition] cannot wait with a timeout, so periodic
    domains (watchdog sweeps, supervisor restart backoff) either
    oversleep shutdown by a full period or busy-poll. A [Waiter.t]
    gives the third option: sleep up to the period, but return
    immediately when another domain calls {!wake}. One waiter per
    sleeping domain; [wake] may be called from anywhere, any number of
    times (wakes coalesce). *)

type t

val create : unit -> t

val wait : t -> float -> bool
(** [wait t seconds] blocks up to [seconds]. Returns [true] if the
    sleep was cut short (a {!wake}, a signal, or disposal), [false] on
    a full timeout. Non-positive durations return [false] at once.
    Pending wakes are consumed, so back-to-back waits sleep again. *)

val wake : t -> unit
(** Interrupt the current (or next) {!wait}. Cheap, non-blocking,
    safe from any domain and from signal handlers' deferred context. *)

val dispose : t -> unit
(** Close the pipe. Call only after the sleeping domain has exited
    (a concurrent {!wait} observes disposal as a wake at worst).
    Idempotent. *)

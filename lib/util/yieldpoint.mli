(** Simulation yield points on the lock-free execution path.

    The deterministic concurrency simulator ([Aeq_sim]) runs the real
    engine under a controlled scheduler: instrumented sites call
    {!yield}, the installed handler suspends the calling task and
    hands the run token to whichever task the seeded scheduler picks
    next. With no handler installed — production, and every test that
    does not simulate — a yield point costs one atomic load and an
    untaken branch.

    Sites wired in today (co-located with the {!Failpoints} sites of
    the same name where both exist):
    - ["arena.lease"] / ["arena.release"] / ["arena.alloc"] /
      ["arena.backpressure"] — scratch-lease lifecycle and chunk grabs;
    - ["driver.morsel"] — before each morsel of each pipeline;
    - ["driver.ctx_install"] — right after a worker installs its
      query's execution context in domain-local storage;
    - ["pool.pick"] — when a pool participant starts on a job;
    - ["engine.cache"] / ["engine.singleflight"] /
      ["engine.singleflight.wait"] — plan-cache lookup and the
      single-flight prepare path.

    Instrumentation rule: a yield point must never be placed while a
    lock is held — the simulator serializes tasks, and suspending a
    lock holder deadlocks any task that blocks on that lock for real.
*)

val enabled : unit -> bool
(** Is a simulation handler installed? Instrumented blocking loops
    (single-flight wait, arena backpressure) use this to spin through
    {!yield} instead of blocking on a condition variable the
    simulator cannot see. *)

val yield : string -> unit
(** Evaluate the site: no-op when disabled, otherwise calls the
    installed handler with the site name. *)

val install : (string -> unit) -> unit
(** Install the simulation handler.
    @raise Invalid_argument if one is already installed. *)

val uninstall : unit -> unit
(** Remove the handler; {!yield} reverts to a load-and-branch no-op. *)

val with_handler : (string -> unit) -> (unit -> 'a) -> 'a
(** [with_handler f body] installs [f] around [body], uninstalling on
    all exits. *)

(** Process-wide verification level.

    [0] (the default) disables the deep verifiers; any positive level
    makes the pass manager run the SSA verifier between passes and the
    translator run the bytecode verifier on its output. Initialised
    from the [AEQ_VERIFY] environment variable ([AEQ_VERIFY=1], or any
    non-numeric non-empty value, means level 1). *)

val set : int -> unit
(** Clamped at 0 from below. *)

val get : unit -> int

val enabled : unit -> bool
(** [get () > 0]. *)

(* The wall clock, behind one indirection so the deterministic
   simulator can substitute a virtual clock: every timer, timeout and
   deadline in the engine reads [now], so overriding the source makes
   time itself part of the replayable schedule. Production cost: one
   ref dereference on top of gettimeofday. *)
let source : (unit -> float) ref = ref Unix.gettimeofday

let now () = !source ()

let set_source f = source := f

let reset_source () = source := Unix.gettimeofday

let time_it f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

let ms s = s *. 1000.0

let busy_wait s =
  if s > 0.0 then begin
    let deadline = now () +. s in
    while now () < deadline do
      (* A short computation batch between clock reads keeps the spin
         from hammering the VDSO call. *)
      let acc = ref 0 in
      for i = 1 to 500 do
        acc := !acc + i
      done;
      ignore (Sys.opaque_identity !acc)
    done
  end

(** Deterministic fault injection.

    A failpoint is a named site in the engine (a compile, a morsel, an
    arena chunk grab) that can be armed to fail or stall on a chosen
    hit. The recovery paths of the fault-tolerance layer are only
    trustworthy if they run under test; this registry makes the faults
    reproducible.

    Sites wired in today (the full catalog; arming any other name
    raises [Invalid_argument] listing the valid sites — a typo'd site
    used to arm nothing, silently):
    - ["compile.unopt"] / ["compile.opt"] — hit in [Handle.promote]
      just before the machine-code variant is built (cached variants
      are not a compilation and do not hit the site);
    - ["compile.singleflight"] — hit by the plan cache's single-flight
      prepare, after the miss is claimed and before planning/codegen
      (waiters are woken and the caller gets a structured error);
    - ["driver.morsel"] — hit before every morsel of every pipeline;
    - ["arena.alloc"] — hit when the arena takes a new chunk
      (simulated allocation failure / OOM);
    - ["arena.lease"] — hit when a query takes its scratch lease,
      before the lease exists (a fault here must not leak);
    - ["arena.release"] — hit when a scratch lease is released; the
      chunk slots are reclaimed {e regardless} (the reclamation runs
      in a [Fun.protect] finaliser), so the fault exercises caller
      error paths without ever leaking memory;
    - ["pool.pick"] — hit when a pool participant (worker domain or
      the submitting caller) starts on a job, before the first morsel;
    - ["sched.dispatch"] — hit by a scheduler dispatcher after it has
      claimed a ticket (the ticket is registered, so a [Crash] here
      exercises the supervisor's in-flight-ticket reclaim);
    - ["sched.watchdog"] — hit by the scheduler watchdog once per
      sweep, before it takes the scheduler lock;
    - ["net.accept"] — hit by the wire server's accept loop after a
      connection is accepted and before its session starts (a fault
      here closes the socket without serving it);
    - ["net.read"] — hit before every frame read off a client socket
      (simulated connection drop / read error mid-protocol);
    - ["net.write"] — hit before every frame written to a client
      socket (simulated broken pipe while responding).

    The registry is global and thread-safe; a disarmed registry costs
    one atomic load per check. Arm programmatically with {!activate}
    or through the [AEQ_FAILPOINTS] environment variable, e.g.
    [AEQ_FAILPOINTS="compile.opt=fail,driver.morsel=fail@5"]. *)

exception Injected of string
(** Raised by a triggered [Fail] site, carrying the site name. *)

exception Injected_crash of string
(** Raised by a triggered [Crash] site. Unlike {!Injected}, this is
    {e not} part of the structured-error contract: every layer that
    folds exceptions into [Query_error] lets it pass, so it unwinds
    all the way out of the hosting domain — simulating a bug that
    kills a dispatcher, watchdog or pool worker. Only a supervisor
    barrier ([Aeq_exec.Supervisor]) contains it. *)

val is_crash : exn -> bool
(** Is this {!Injected_crash}, possibly wrapped in (nested)
    [Fun.Finally_raised] by finalisers along the unwind? Conversion
    layers use this to decide "let it escape". *)

type action =
  | Fail  (** raise {!Injected} *)
  | Delay of float  (** sleep this many seconds (slow compile, slow morsel) *)
  | Prob_fail of float
      (** raise {!Injected} with this probability on each hit — the
          chaos-mode action: a soak run under [Prob_fail] exercises
          retry and circuit-breaker paths non-deterministically but
          reproducibly (see {!set_seed}) *)
  | Crash
      (** raise {!Injected_crash} — kill the hosting domain (spec
          syntax [site=crash]); exercises the supervision layer's
          crash containment, reclaim and restart paths *)

val activate : ?on_hit:int -> ?persistent:bool -> string -> action -> unit
(** Arm a site. With [persistent] (the default) the site triggers on
    every hit from the [on_hit]-th (default 1) onward; with
    [~persistent:false] it triggers exactly once, on the [on_hit]-th
    hit. For [Prob_fail] the hit-count gate applies first, then the
    coin is tossed. Re-activating a site replaces its previous arming
    and resets its counters.
    @raise Invalid_argument if the site name is not in the catalog
    (see {!valid_sites}, {!register_site}) or a [Prob_fail]
    probability is outside [\[0,1\]]. *)

val builtin_sites : string list
(** The sites compiled into the engine proper, without test extras.
    The static lint cross-checks every literal [hit] call in the
    source tree against exactly this list, both directions. *)

val valid_sites : unit -> string list
(** The armable site catalog: every site compiled into the engine
    plus any test-registered extras. *)

val register_site : string -> unit
(** Extend the catalog with a synthetic site — for tests that
    exercise the registry itself rather than an engine site. *)

val set_seed : int64 -> unit
(** Re-seed the registry's PRNG (splitmix64, shared by every
    [Prob_fail] site). Chaos tests call this first so their fault
    schedule is reproducible. *)

val deactivate : string -> unit

val clear : unit -> unit
(** Disarm everything (tests should call this in cleanup). *)

val armed : unit -> bool
(** Any site armed? (the cheap fast-path check) *)

val hit : string -> unit
(** Evaluate a site. No-op unless the site is armed.
    @raise Injected if the armed action is [Fail] and this hit
    triggers. *)

val hits : string -> int
(** How many times the armed site was evaluated (0 if not armed;
    counters reset on re-activation). *)

val fired : string -> int
(** How many times the armed site actually triggered. *)

val set_from_string : string -> unit
(** Parse and activate a spec like
    ["compile.opt=fail,driver.morsel=delay:0.01@2,arena.alloc=p:0.05"].
    Entries are [site=fail], [site=crash], [site=delay:SECONDS] or
    [site=p:PROBABILITY], optionally suffixed [@N] to make the site
    one-shot on its Nth hit.
    @raise Invalid_argument on a malformed spec. *)

val env_var : string
(** ["AEQ_FAILPOINTS"] — parsed once at module initialisation
    (malformed values warn on stderr instead of raising). *)

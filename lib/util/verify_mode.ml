(* Process-wide verification level, shared by every layer that can
   self-check (SSA verifier between passes, bytecode verifier after
   translation). Lives here rather than in the pass manager because
   aeq_vm cannot see aeq_passes: both read the switch through
   aeq_util.

   Level 0 disables everything (production default); level 1 and above
   run the deep verifiers. Initialised from AEQ_VERIFY. *)

let parse = function
  | None -> 0
  | Some ("" | "0" | "false" | "off" | "no") -> 0
  | Some s -> ( match int_of_string_opt s with Some n -> Stdlib.max 0 n | None -> 1)

let level = Atomic.make (parse (Sys.getenv_opt "AEQ_VERIFY"))

let set l = Atomic.set level (Stdlib.max 0 l)

let get () = Atomic.get level

let enabled () = Atomic.get level > 0

(* Cooperative scheduling points for the deterministic concurrency
   simulator (Aeq_sim).

   A yield point is a named site on the lock-free execution path —
   lease acquire/release, a morsel boundary, a context install, a
   plan-cache lookup — where a simulated task hands control back to
   the simulator's scheduler. Production never pays for them: with no
   handler installed, [yield] is a single atomic load and a branch
   (the same fast-path discipline as Failpoints.armed and
   Obs.Control.enabled).

   Discipline for instrumented code: a yield point must NEVER sit
   inside a critical section. The simulator serializes tasks, so a
   task suspended at a yield while holding a real mutex would deadlock
   any task that then blocks on that mutex outside the simulator's
   view. Every site below is placed before the lock is taken or after
   it is dropped. *)

let () = Aeq_race.declare "util.yieldpoint.handler" Aeq_race.Atomic

let enabled_flag = Atomic.make false

(* An atomic in its own right: the old plain ref relied on the
   [enabled_flag] release/acquire pair for publication, which held for
   install but left a disable/enable cycle racing a concurrent [yield]
   (flag observed true, handler read unordered). *)
let handler : (string -> unit) Atomic.t = Atomic.make (fun _ -> ())

let enabled () = Atomic.get enabled_flag

let[@inline] yield site =
  if Atomic.get enabled_flag then (Atomic.get handler) site

let install f =
  if Atomic.get enabled_flag then
    invalid_arg "Yieldpoint.install: a simulation handler is already installed";
  Atomic.set handler f;
  Atomic.set enabled_flag true

let uninstall () =
  Atomic.set enabled_flag false;
  Atomic.set handler (fun _ -> ())

let with_handler f body =
  install f;
  Fun.protect ~finally:uninstall body

(* Cooperative scheduling points for the deterministic concurrency
   simulator (Aeq_sim).

   A yield point is a named site on the lock-free execution path —
   lease acquire/release, a morsel boundary, a context install, a
   plan-cache lookup — where a simulated task hands control back to
   the simulator's scheduler. Production never pays for them: with no
   handler installed, [yield] is a single atomic load and a branch
   (the same fast-path discipline as Failpoints.armed and
   Obs.Control.enabled).

   Discipline for instrumented code: a yield point must NEVER sit
   inside a critical section. The simulator serializes tasks, so a
   task suspended at a yield while holding a real mutex would deadlock
   any task that then blocks on that mutex outside the simulator's
   view. Every site below is placed before the lock is taken or after
   it is dropped. *)

let enabled_flag = Atomic.make false

(* Written only while disabled (install/uninstall), published by the
   release store on [enabled_flag]; readers load the flag (acquire)
   first, so the handler read is ordered. *)
let handler : (string -> unit) ref = ref (fun _ -> ())

let enabled () = Atomic.get enabled_flag

let[@inline] yield site = if Atomic.get enabled_flag then !handler site

let install f =
  if Atomic.get enabled_flag then
    invalid_arg "Yieldpoint.install: a simulation handler is already installed";
  handler := f;
  Atomic.set enabled_flag true

let uninstall () =
  Atomic.set enabled_flag false;
  handler := fun _ -> ()

let with_handler f body =
  install f;
  Fun.protect ~finally:uninstall body

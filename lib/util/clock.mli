(** Wall-clock timing helpers used by the progress tracker, the
    adaptive controller and all benchmarks. *)

val now : unit -> float
(** Seconds since an arbitrary epoch, monotonic enough for interval
    measurement. Reads the installed {!set_source} source (the real
    wall clock by default). *)

val set_source : (unit -> float) -> unit
(** Substitute the time source. The deterministic simulator installs
    a virtual clock here so timeouts, deadlines and backpressure
    waits advance with the simulated schedule instead of real time. *)

val reset_source : unit -> unit
(** Restore the real wall clock. *)

val time_it : (unit -> 'a) -> 'a * float
(** [time_it f] runs [f] and returns its result together with the
    elapsed wall time in seconds. *)

val ms : float -> float
(** Convert seconds to milliseconds. *)

val busy_wait : float -> unit
(** [busy_wait s] spins for [s] seconds. Used by the compile-latency
    cost model to emulate LLVM backend costs (see DESIGN.md). *)

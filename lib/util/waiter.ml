(* An interruptible timed wait over a self-pipe.

   OCaml's stdlib [Condition] has no timed wait, so a domain that
   wants "sleep up to N seconds unless woken" — the scheduler
   watchdog between sweeps, a supervisor backing off before a restart
   — used to [Unix.sleepf] and made every shutdown pay a full period.
   Here the sleeper selects on the read end of a pipe; [wake] writes a
   byte, turning the remaining sleep into an immediate return. Wakes
   are sticky until consumed: a [wake] racing slightly ahead of the
   [wait] still cuts that wait short. *)

let () = Aeq_race.declare "util.waiter.state" (Aeq_race.Lock "util.waiter.lock")

type t = {
  rd : Unix.file_descr;
  wr : Unix.file_descr;
  lock : Aeq_race.Lock.t; (* guards the fds against wake/dispose races *)
  mutable disposed : bool;
  loc : Aeq_race.location;
}

let dispose t =
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.write ~site:"waiter.dispose" t.loc;
      if not t.disposed then begin
        t.disposed <- true;
        (try Unix.close t.rd with Unix.Unix_error _ -> ());
        try Unix.close t.wr with Unix.Unix_error _ -> ()
      end)

let create () =
  let rd, wr = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock rd;
  Unix.set_nonblock wr;
  let t =
    {
      rd;
      wr;
      lock = Aeq_race.Lock.create "util.waiter.lock";
      disposed = false;
      loc = Aeq_race.locate "util.waiter.state";
    }
  in
  (* waiters are cheap to forget (per-arena backpressure waiters have no
     dispose lifecycle of their own); reclaim the pipe fds with the
     record. [dispose] is idempotent and lock-guarded, so an explicit
     dispose racing the finaliser is fine. *)
  Gc.finalise dispose t;
  t

let wake t =
  Aeq_race.Lock.with_ t.lock (fun () ->
      Aeq_race.read ~site:"waiter.wake" t.loc;
      if not t.disposed then begin
        try ignore (Unix.write t.wr (Bytes.make 1 'w') 0 1) with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          () (* pipe already full of unconsumed wakes: the sleeper will see them *)
        | Unix.Unix_error (Unix.EINTR, _, _) -> ()
      end)

(* drain every pending wake byte so the next [wait] actually sleeps *)
let drain t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.rd buf 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait t seconds =
  if seconds > 0.0 then begin
    match Unix.select [ t.rd ] [] [] seconds with
    | [], _, _ -> false (* timed out *)
    | _ ->
      drain t;
      true
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* a signal landed; treat it as a wake so signal-driven shutdown
         (SIGTERM → drain) is never stuck behind a sleeping select *)
      true
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> true (* disposed under us *)
  end
  else false


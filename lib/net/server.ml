(* The wire server. Sessions are systhreads (they block on sockets and
   scheduler tickets, not CPU), the engine's domains do the work. *)

module Engine = Aeq.Engine
module P = Protocol

let () = Aeq_race.declare "net.server.sessions" (Aeq_race.Lock "net.server.lock")

let () = Aeq_race.declare "net.session.state" (Aeq_race.Lock "net.session.lock")

let () = Aeq_race.declare "net.server.lifecycle" Aeq_race.Atomic

type config = {
  port : int;
  metrics_port : int option;
  max_connections : int;
  fetch_size : int;
  max_frame_bytes : int;
  server_name : string;
  mode : Aeq_exec.Driver.mode;
}

let default_config =
  {
    port = 7878;
    metrics_port = None;
    max_connections = 64;
    fetch_size = 256;
    max_frame_bytes = P.default_max_frame_bytes;
    server_name = "aeq";
    mode = Aeq_exec.Driver.Adaptive;
  }

(* lifecycle values (the "net.server.lifecycle" atomic) *)
let lc_serving = 0

let lc_draining = 1

let lc_stopped = 2

type session = {
  ss_id : int;
  ss_fd : Unix.file_descr;
  ss_lock : Aeq_race.Lock.t;
  ss_loc : Aeq_race.location;
  mutable ss_busy : bool;  (* a query is in flight for this session *)
  mutable ss_shut : bool;  (* drain already shut the socket down *)
  mutable ss_thread : Thread.t option;
}

type t = {
  sv_engine : Engine.t;
  sv_config : config;
  sv_wire : Unix.file_descr;
  sv_wire_port : int;
  sv_http : Unix.file_descr option;
  sv_http_port : int option;
  sv_wake_r : Unix.file_descr;
  sv_wake_w : Unix.file_descr;
  sv_lock : Aeq_race.Lock.t;
  sv_loc : Aeq_race.location;
  sv_sessions : (int, session) Hashtbl.t;
  mutable sv_next_id : int;
  mutable sv_shed : int;
  mutable sv_accept : Thread.t option;
  sv_lifecycle : int Atomic.t;
}

let bump ?help name =
  if Aeq_obs.Control.enabled () then
    Aeq_obs.Metrics.inc (Aeq_obs.Metrics.counter ?help name)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- session bookkeeping --------------------------------------------- *)

let set_busy ss v =
  Aeq_race.Lock.with_ ss.ss_lock (fun () ->
      Aeq_race.write ~site:"net.session.busy" ss.ss_loc;
      ss.ss_busy <- v)

let is_busy ss =
  Aeq_race.Lock.with_ ss.ss_lock (fun () ->
      Aeq_race.read ~site:"net.session.busy.read" ss.ss_loc;
      ss.ss_busy)

(* Drain-side wakeup: shutdown unblocks the session thread's read
   without freeing the descriptor number (only the session thread ever
   closes the fd, so a recycled number can never be shut down by
   mistake). *)
let shutdown_session ss =
  Aeq_race.Lock.with_ ss.ss_lock (fun () ->
      Aeq_race.write ~site:"net.session.shutdown" ss.ss_loc;
      if not ss.ss_shut then begin
        ss.ss_shut <- true;
        try Unix.shutdown ss.ss_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
      end)

let session_thread ss =
  Aeq_race.Lock.with_ ss.ss_lock (fun () ->
      Aeq_race.read ~site:"net.session.thread" ss.ss_loc;
      ss.ss_thread)

let remove_session t ss =
  close_quietly ss.ss_fd;
  Aeq_race.Lock.with_ t.sv_lock (fun () ->
      Aeq_race.write ~site:"net.session.remove" t.sv_loc;
      Hashtbl.remove t.sv_sessions ss.ss_id)

let snapshot_sessions t =
  Aeq_race.Lock.with_ t.sv_lock (fun () ->
      Aeq_race.read ~site:"net.sessions.snapshot" t.sv_loc;
      Hashtbl.fold (fun _ ss acc -> ss :: acc) t.sv_sessions [])

let active_sessions t =
  Aeq_race.Lock.with_ t.sv_lock (fun () ->
      Aeq_race.read ~site:"net.sessions.count" t.sv_loc;
      Hashtbl.length t.sv_sessions)

let connections_shed t =
  Aeq_race.Lock.with_ t.sv_lock (fun () ->
      Aeq_race.read ~site:"net.shed.read" t.sv_loc;
      t.sv_shed)

(* ---- the session protocol loop --------------------------------------- *)

let send fd resp = P.write_frame fd (P.encode_response resp)

let send_ignore fd resp = ignore (send fd resp)

let rec take_rows n = function
  | [] -> ([], [])
  | rest when n <= 0 -> ([], rest)
  | r :: tl ->
    let page, rest = take_rows (n - 1) tl in
    (r :: page, rest)

(* Plan in the session thread before submitting: the scheduler's exec
   callback treats unstructured exceptions as domain crashes (that is
   the supervision contract), so a typo'd SQL text must be refused
   here, not allowed to take down a dispatcher. *)
let check_plans engine sql =
  match ignore (Engine.plan engine sql) with
  | () -> None
  | exception Aeq_sql.Lexer.Lex_error m -> Some (P.Parse_failed m)
  | exception Aeq_sql.Parser.Parse_error m -> Some (P.Parse_failed m)
  | exception Aeq_plan.Planner.Plan_error m -> Some (P.Plan_failed m)
  | exception Aeq_exec.Query_error.Error e -> Some (P.err_of_query_error e)
  | exception e when not (Aeq_util.Failpoints.is_crash e) ->
    Some (P.Server_error (Printexc.to_string e))

let prepare_stmt engine sql =
  match check_plans engine sql with
  | Some err -> Error err
  | None -> (
    match
      let cached = Engine.prepared engine sql in
      Engine.prepare engine sql;
      cached
    with
    | cached -> Ok cached
    | exception Aeq_exec.Query_error.Error e -> Error (P.err_of_query_error e)
    | exception e when not (Aeq_util.Failpoints.is_crash e) ->
      Error (P.Server_error (Printexc.to_string e)))

type inflight_note = Quiet | Gone | Violation of string | Close_after

(* Await the ticket while watching the socket: an out-of-band [Cancel]
   frame must take effect while the query it cancels is running. *)
let await_multiplexed tk ~fd ~max_bytes ~cancel =
  let note = ref Quiet in
  let flag n = if !note = Quiet then note := n in
  let rec loop () =
    match Aeq_exec.Scheduler.poll tk with
    | Some outcome -> (outcome, !note)
    | None ->
      let readable =
        match Unix.select [ fd ] [] [] 0.002 with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
          flag Gone;
          Aeq_exec.Cancel.cancel cancel;
          false
      in
      if readable then begin
        match P.read_frame ~max_bytes fd with
        | Ok payload -> (
          match P.decode_request payload with
          | Ok P.Cancel -> Aeq_exec.Cancel.cancel cancel
          | Ok P.Close ->
            flag Close_after;
            Aeq_exec.Cancel.cancel cancel
          | Ok _ ->
            flag (Violation "request while a query is in flight");
            Aeq_exec.Cancel.cancel cancel
          | Error m ->
            flag (Violation m);
            Aeq_exec.Cancel.cancel cancel)
        | Error (`Eof | `Fault _) ->
          flag Gone;
          Aeq_exec.Cancel.cancel cancel
        | Error (`Too_large n) ->
          flag (Violation (Printf.sprintf "frame of %d bytes exceeds limit" n));
          Aeq_exec.Cancel.cancel cancel
      end;
      loop ()
  in
  loop ()

let build_result t pending r =
  let { Aeq_exec.Driver.names; dtypes; stats; _ } = r in
  let cells =
    List.map (String.split_on_char '\t') (Engine.render_rows t.sv_engine r)
  in
  let total = List.length cells in
  let page, rest = take_rows t.sv_config.fetch_size cells in
  pending := rest;
  P.Result
    {
      names;
      dtypes = List.map Aeq_storage.Dtype.to_string dtypes;
      total_rows = total;
      rows = page;
      more = rest <> [];
      exec_seconds = stats.Aeq_exec.Driver.exec_seconds;
    }

let serve_session t ss ~priority ~deadline_seconds =
  let fd = ss.ss_fd in
  let max_bytes = t.sv_config.max_frame_bytes in
  let stmts : (int, string) Hashtbl.t = Hashtbl.create 8 in
  let next_stmt = ref 1 in
  let pending = ref [] in
  let violation msg =
    bump ~help:"Protocol violations answered with a structured error"
      "aeq_net_protocol_errors_total";
    send_ignore fd (P.Err (P.Protocol_violation msg))
  in
  let run_query sql =
    match check_plans t.sv_engine sql with
    | Some err ->
      send_ignore fd (P.Err err);
      `Continue
    | None -> (
      let cancel = Aeq_exec.Cancel.create () in
      match
        Engine.submit ~mode:t.sv_config.mode ~priority ?deadline_seconds
          ~cancel t.sv_engine sql
      with
      | exception Aeq_exec.Query_error.Error e ->
        send_ignore fd (P.Err (P.err_of_query_error e));
        `Continue
      | tk ->
        set_busy ss true;
        let outcome, note =
          Fun.protect
            ~finally:(fun () -> set_busy ss false)
            (fun () -> await_multiplexed tk ~fd ~max_bytes ~cancel)
        in
        if note = Gone then `Stop
        else begin
          let resp =
            match outcome with
            | Ok r -> build_result t pending r
            | Error e -> P.Err (P.err_of_query_error e)
          in
          match send fd resp with
          | Error _ -> `Stop
          | Ok () -> (
            match note with
            | Quiet -> `Continue
            | Gone -> `Stop
            | Violation m ->
              violation m;
              `Stop
            | Close_after ->
              send_ignore fd P.Ack;
              `Stop)
        end)
  in
  let rec loop () =
    if Atomic.get t.sv_lifecycle <> lc_serving then ()
    else
      match P.read_frame ~max_bytes fd with
      | Error `Eof -> ()
      | Error (`Fault _) ->
        (* injected read fault: the stream state is unknown, close *)
        bump ~help:"Injected net.read faults" "aeq_net_read_faults_total"
      | Error (`Too_large n) ->
        violation (Printf.sprintf "frame of %d bytes exceeds limit" n)
      | Ok payload -> (
        bump ~help:"Request frames received" "aeq_net_requests_total";
        match P.decode_request payload with
        | Error msg -> violation msg
        | Ok (P.Hello _) -> violation "unexpected Hello on an open session"
        | Ok (P.Prepare sql) -> (
          match prepare_stmt t.sv_engine sql with
          | Error err ->
            send_ignore fd (P.Err err);
            loop ()
          | Ok cached ->
            let id = !next_stmt in
            incr next_stmt;
            Hashtbl.replace stmts id sql;
            send_ignore fd (P.Prepare_ok { stmt_id = id; cached });
            loop ())
        | Ok (P.Execute sql) -> (
          match run_query sql with `Continue -> loop () | `Stop -> ())
        | Ok (P.Execute_prepared id) -> (
          match Hashtbl.find_opt stmts id with
          | None -> violation (Printf.sprintf "unknown prepared statement %d" id)
          | Some sql -> (
            match run_query sql with `Continue -> loop () | `Stop -> ()))
        | Ok (P.Fetch n) ->
          let page, rest = take_rows n !pending in
          pending := rest;
          send_ignore fd (P.Rows { rows = page; more = rest <> [] });
          loop ()
        | Ok P.Cancel ->
          (* nothing in flight on this session: benign *)
          send_ignore fd P.Ack;
          loop ()
        | Ok P.Close -> send_ignore fd P.Ack)
  in
  loop ()

let handshake t ss =
  match P.read_frame ~max_bytes:t.sv_config.max_frame_bytes ss.ss_fd with
  | Error `Eof | Error (`Fault _) -> None
  | Error (`Too_large n) ->
    send_ignore ss.ss_fd
      (P.Err
         (P.Protocol_violation
            (Printf.sprintf "frame of %d bytes exceeds limit" n)));
    None
  | Ok payload -> (
    match P.decode_request payload with
    | Ok (P.Hello { client = _; priority; deadline_seconds }) ->
      (match
         send ss.ss_fd
           (P.Hello_ok
              {
                server = t.sv_config.server_name;
                version = P.version;
                fetch_size = t.sv_config.fetch_size;
              })
       with
      | Ok () ->
        Some (P.priority_to_scheduler priority, deadline_seconds)
      | Error _ -> None)
    | Ok _ ->
      send_ignore ss.ss_fd
        (P.Err (P.Protocol_violation "expected Hello as the first frame"));
      None
    | Error msg ->
      send_ignore ss.ss_fd (P.Err (P.Protocol_violation msg));
      None)

let session_main t ss =
  Fun.protect
    ~finally:(fun () -> remove_session t ss)
    (fun () ->
      match handshake t ss with
      | None -> ()
      | Some (priority, deadline_seconds) ->
        serve_session t ss ~priority ~deadline_seconds)

(* ---- accepting -------------------------------------------------------- *)

let register_session t fd =
  Aeq_race.Lock.with_ t.sv_lock (fun () ->
      Aeq_race.write ~site:"net.accept.register" t.sv_loc;
      let active = Hashtbl.length t.sv_sessions in
      if active >= t.sv_config.max_connections then begin
        t.sv_shed <- t.sv_shed + 1;
        Error active
      end
      else begin
        let id = t.sv_next_id in
        t.sv_next_id <- id + 1;
        let ss =
          {
            ss_id = id;
            ss_fd = fd;
            ss_lock = Aeq_race.Lock.create "net.session.lock";
            ss_loc = Aeq_race.locate "net.session.state";
            ss_busy = false;
            ss_shut = false;
            ss_thread = None;
          }
        in
        Hashtbl.replace t.sv_sessions id ss;
        Ok ss
      end)

let handle_wire_accept t =
  match Unix.accept ~cloexec:true t.sv_wire with
  | exception Unix.Unix_error _ -> ()
  | fd, _ -> (
    match Aeq_util.Failpoints.hit "net.accept" with
    | exception Aeq_util.Failpoints.Injected _ ->
      bump ~help:"Injected net.accept faults" "aeq_net_accept_faults_total";
      close_quietly fd
    | () -> (
      match register_session t fd with
      | Error active ->
        bump ~help:"Connections shed over the connection limit"
          "aeq_net_connections_shed_total";
        send_ignore fd
          (P.Err
             (P.Overloaded
                { queue_depth = active; capacity = t.sv_config.max_connections }));
        close_quietly fd
      | Ok ss ->
        bump ~help:"Connections accepted" "aeq_net_connections_total";
        let th = Thread.create (fun () -> session_main t ss) () in
        Aeq_race.Lock.with_ ss.ss_lock (fun () ->
            Aeq_race.write ~site:"net.session.thread.set" ss.ss_loc;
            ss.ss_thread <- Some th)))

(* ---- the metrics / health HTTP listener ------------------------------ *)

let http_write fd body =
  let rec wr off =
    if off < String.length body then
      match Unix.write_substring fd body off (String.length body - off) with
      | 0 -> ()
      | n -> wr (off + n)
      | exception Unix.Unix_error _ -> ()
  in
  wr 0

let http_respond fd ~status ~content_type body =
  http_write fd
    (Printf.sprintf
       "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n%s"
       status content_type (String.length body) body)

let handle_http t fd =
  Fun.protect
    ~finally:(fun () -> close_quietly fd)
    (fun () ->
      let readable =
        match Unix.select [ fd ] [] [] 2.0 with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error _ -> false
      in
      if readable then begin
        let buf = Bytes.create 2048 in
        let n = try Unix.read fd buf 0 2048 with Unix.Unix_error _ -> 0 in
        if n > 0 then begin
          let line =
            let s = Bytes.sub_string buf 0 n in
            match String.index_opt s '\r' with
            | Some i -> String.sub s 0 i
            | None -> s
          in
          match String.split_on_char ' ' line with
          | "GET" :: "/metrics" :: _ ->
            http_respond fd ~status:"200 OK"
              ~content_type:Aeq_obs.Metrics.exposition_content_type
              (Engine.render_metrics ())
          | "GET" :: "/healthz" :: _ ->
            let h = Engine.health t.sv_engine in
            let status =
              match h with
              | Engine.Serving | Engine.Degraded _ -> "200 OK"
              | Engine.Draining | Engine.Stopped -> "503 Service Unavailable"
            in
            http_respond fd ~status ~content_type:"text/plain"
              (Engine.health_name h ^ "\n")
          | _ ->
            http_respond fd ~status:"404 Not Found" ~content_type:"text/plain"
              "not found\n"
        end
      end)

let handle_http_accept t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception Unix.Unix_error _ -> ()
  | fd, _ -> ignore (Thread.create (fun () -> handle_http t fd) ())

(* ---- the accept loop -------------------------------------------------- *)

let accept_loop t =
  let listeners =
    (t.sv_wake_r :: t.sv_wire :: (match t.sv_http with Some f -> [ f ] | None -> []))
  in
  let rec loop () =
    let rs =
      match Unix.select listeners [] [] (-1.0) with
      | rs, _, _ -> rs
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    if List.mem t.sv_wake_r rs then
      ignore (try Unix.read t.sv_wake_r (Bytes.create 1) 0 1 with Unix.Unix_error _ -> 0);
    if Atomic.get t.sv_lifecycle = lc_serving then begin
      if List.mem t.sv_wire rs then handle_wire_accept t;
      (match t.sv_http with
      | Some f when List.mem f rs -> handle_http_accept t f
      | _ -> ());
      loop ()
    end
  in
  loop ()

(* ---- lifecycle -------------------------------------------------------- *)

let listen_on port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd 128
   with e ->
     close_quietly fd;
     raise e);
  let actual =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, actual)

let start ?(config = default_config) engine =
  (* a client that vanishes mid-write must surface as EPIPE, not kill
     the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let wire, wire_port = listen_on config.port in
  let http, http_port =
    match config.metrics_port with
    | None -> (None, None)
    | Some p -> (
      match listen_on p with
      | fd, actual -> (Some fd, Some actual)
      | exception e ->
        close_quietly wire;
        raise e)
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      sv_engine = engine;
      sv_config = config;
      sv_wire = wire;
      sv_wire_port = wire_port;
      sv_http = http;
      sv_http_port = http_port;
      sv_wake_r = wake_r;
      sv_wake_w = wake_w;
      sv_lock = Aeq_race.Lock.create "net.server.lock";
      sv_loc = Aeq_race.locate "net.server.sessions";
      sv_sessions = Hashtbl.create 64;
      sv_next_id = 1;
      sv_shed = 0;
      sv_accept = None;
      sv_lifecycle = Atomic.make lc_serving;
    }
  in
  Aeq_obs.Metrics.gauge_fn ~help:"Active wire sessions"
    "aeq_net_connections_active" (fun () -> active_sessions t);
  Aeq_obs.Metrics.gauge_fn ~help:"Connections shed over the connection limit"
    "aeq_net_connections_shed" (fun () -> connections_shed t);
  let th = Thread.create (fun () -> accept_loop t) () in
  Aeq_race.Lock.with_ t.sv_lock (fun () ->
      Aeq_race.write ~site:"net.server.accept.set" t.sv_loc;
      t.sv_accept <- Some th);
  t

let port t = t.sv_wire_port

let metrics_port t = t.sv_http_port

let draining t = Atomic.get t.sv_lifecycle = lc_draining

let wake t =
  try ignore (Unix.write_substring t.sv_wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

(* Idempotent: stop the accept thread and close the listeners (new
   connects are then refused at the TCP level). *)
let stop_accepting t =
  let th =
    Aeq_race.Lock.with_ t.sv_lock (fun () ->
        Aeq_race.write ~site:"net.server.accept.take" t.sv_loc;
        let th = t.sv_accept in
        t.sv_accept <- None;
        th)
  in
  match th with
  | None -> ()
  | Some th ->
    wake t;
    Thread.join th;
    close_quietly t.sv_wire;
    (match t.sv_http with Some f -> close_quietly f | None -> ());
    close_quietly t.sv_wake_r;
    close_quietly t.sv_wake_w

let join_sessions t =
  let sessions = snapshot_sessions t in
  List.iter shutdown_session sessions;
  List.iter
    (fun ss -> match session_thread ss with Some th -> Thread.join th | None -> ())
    sessions

let wait t =
  let rec w () =
    if Atomic.get t.sv_lifecycle <> lc_stopped then begin
      Thread.delay 0.05;
      w ()
    end
  in
  w ()

let drain ?(deadline_seconds = 30.) t =
  if not (Atomic.compare_and_set t.sv_lifecycle lc_serving lc_draining) then begin
    (* someone else is already draining (or stopped): wait it out *)
    wait t;
    true
  end
  else begin
    let t0 = Aeq_util.Clock.now () in
    stop_accepting t;
    (* in-flight queries finish (or are cancelled at the deadline), the
       health gauge walks Serving -> Draining -> Stopped, the engine
       closes *)
    let ok = Engine.drain ~deadline_seconds t.sv_engine in
    (* let busy sessions flush their final response before the sockets
       are torn down *)
    let rec settle () =
      if
        List.exists is_busy (snapshot_sessions t)
        && Aeq_util.Clock.now () -. t0 < deadline_seconds
      then begin
        Thread.delay 0.005;
        settle ()
      end
    in
    settle ();
    join_sessions t;
    Atomic.set t.sv_lifecycle lc_stopped;
    ok
  end

let stop t =
  let prev = Atomic.exchange t.sv_lifecycle lc_stopped in
  if prev <> lc_stopped then begin
    stop_accepting t;
    join_sessions t
  end

let install_signal_handlers ?(deadline_seconds = 30.) t =
  let requested = Atomic.make false in
  let handler _ =
    (* flag only: a handler must not take locks or drain in place; a
       second signal force-exits *)
    if not (Atomic.compare_and_set requested false true) then Stdlib.exit 130
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handler);
  Sys.set_signal Sys.sigint (Sys.Signal_handle handler);
  ignore
    (Thread.create
       (fun () ->
         let rec watch () =
           if Atomic.get requested then ignore (drain ~deadline_seconds t)
           else if Atomic.get t.sv_lifecycle = lc_stopped then ()
           else begin
             Thread.delay 0.02;
             watch ()
           end
         in
         watch ())
       ())

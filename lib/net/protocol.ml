(* Length-prefixed binary frames. The codec is a pure function of the
   payload string both ways; socket I/O lives at the bottom with the
   net.read / net.write failpoints. *)

let version = 1

let default_max_frame_bytes = 4 * 1024 * 1024

type priority = Low | Normal | High

let priority_of_scheduler = function
  | Aeq_exec.Scheduler.Low -> Low
  | Aeq_exec.Scheduler.Normal -> Normal
  | Aeq_exec.Scheduler.High -> High

let priority_to_scheduler = function
  | Low -> Aeq_exec.Scheduler.Low
  | Normal -> Aeq_exec.Scheduler.Normal
  | High -> Aeq_exec.Scheduler.High

type request =
  | Hello of {
      client : string;
      priority : priority;
      deadline_seconds : float option;
    }
  | Prepare of string
  | Execute of string
  | Execute_prepared of int
  | Fetch of int
  | Cancel
  | Close

type err =
  | Trap of string
  | Compile_failed of string * string
  | Timeout of float
  | Cancelled
  | Memory_budget_exceeded of { budget_bytes : int; used_bytes : int }
  | Overloaded of { queue_depth : int; capacity : int }
  | Rejected of string
  | Worker_crashed of { domain : string; detail : string }
  | Parse_failed of string
  | Plan_failed of string
  | Protocol_violation of string
  | Server_error of string

let err_of_query_error = function
  | Aeq_exec.Query_error.Trap m -> Trap m
  | Aeq_exec.Query_error.Compile_failed (mode, detail) ->
    Compile_failed (Aeq_backend.Cost_model.mode_name mode, detail)
  | Aeq_exec.Query_error.Timeout s -> Timeout s
  | Aeq_exec.Query_error.Cancelled -> Cancelled
  | Aeq_exec.Query_error.Memory_budget_exceeded { budget_bytes; used_bytes } ->
    Memory_budget_exceeded { budget_bytes; used_bytes }
  | Aeq_exec.Query_error.Overloaded { queue_depth; capacity } ->
    Overloaded { queue_depth; capacity }
  | Aeq_exec.Query_error.Rejected reason -> Rejected reason
  | Aeq_exec.Query_error.Worker_crashed { domain; detail } ->
    Worker_crashed { domain; detail }

let err_to_string = function
  | Trap m -> "trap: " ^ m
  | Compile_failed (mode, detail) ->
    Printf.sprintf "compilation to %s failed: %s" mode detail
  | Timeout s -> Printf.sprintf "timeout after %.3f s" s
  | Cancelled -> "cancelled"
  | Memory_budget_exceeded { budget_bytes; used_bytes } ->
    Printf.sprintf "memory budget exceeded: %d of %d bytes" used_bytes
      budget_bytes
  | Overloaded { queue_depth; capacity } ->
    Printf.sprintf "overloaded: %d/%d" queue_depth capacity
  | Rejected reason -> "rejected: " ^ reason
  | Worker_crashed { domain; detail } ->
    Printf.sprintf "worker crashed (%s): %s" domain detail
  | Parse_failed m -> "parse error: " ^ m
  | Plan_failed m -> "planning error: " ^ m
  | Protocol_violation m -> "protocol violation: " ^ m
  | Server_error m -> "server error: " ^ m

type response =
  | Hello_ok of { server : string; version : int; fetch_size : int }
  | Prepare_ok of { stmt_id : int; cached : bool }
  | Result of {
      names : string list;
      dtypes : string list;
      total_rows : int;
      rows : string list list;
      more : bool;
      exec_seconds : float;
    }
  | Rows of { rows : string list list; more : bool }
  | Ack
  | Err of err

(* ---- encoding --------------------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then
    invalid_arg (Printf.sprintf "Protocol: u32 out of range (%d)" v);
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_i64 b v =
  for shift = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (shift * 8)) land 0xff))
  done

let put_f64 b v = put_i64 b (Int64.bits_of_float v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_list b put xs =
  put_u32 b (List.length xs);
  List.iter (put b) xs

let put_rows b rows = put_list b (fun b row -> put_list b put_str row) rows

let priority_code = function Low -> 0 | Normal -> 1 | High -> 2

(* frame type tags; requests are < 0x80, responses ≥ 0x80 *)
let tag_hello = 0x01
let tag_prepare = 0x02
let tag_execute = 0x03
let tag_execute_prepared = 0x04
let tag_fetch = 0x05
let tag_cancel = 0x06
let tag_close = 0x07
let tag_hello_ok = 0x81
let tag_prepare_ok = 0x82
let tag_result = 0x83
let tag_rows = 0x84
let tag_ack = 0x85
let tag_err = 0x86

(* structured error codes *)
let err_code = function
  | Trap _ -> 1
  | Compile_failed _ -> 2
  | Timeout _ -> 3
  | Cancelled -> 4
  | Memory_budget_exceeded _ -> 5
  | Overloaded _ -> 6
  | Rejected _ -> 7
  | Worker_crashed _ -> 8
  | Parse_failed _ -> 9
  | Plan_failed _ -> 10
  | Protocol_violation _ -> 11
  | Server_error _ -> 12

let frame_of_payload payload =
  let b = Buffer.create (String.length payload + 4) in
  put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Buffer.contents b

let with_payload tag fill =
  let b = Buffer.create 64 in
  put_u8 b tag;
  fill b;
  frame_of_payload (Buffer.contents b)

let encode_request = function
  | Hello { client; priority; deadline_seconds } ->
    with_payload tag_hello (fun b ->
        put_u8 b version;
        put_str b client;
        put_u8 b (priority_code priority);
        put_f64 b
          (match deadline_seconds with Some s -> s | None -> Float.nan))
  | Prepare sql -> with_payload tag_prepare (fun b -> put_str b sql)
  | Execute sql -> with_payload tag_execute (fun b -> put_str b sql)
  | Execute_prepared id ->
    with_payload tag_execute_prepared (fun b -> put_u32 b id)
  | Fetch max_rows -> with_payload tag_fetch (fun b -> put_u32 b max_rows)
  | Cancel -> with_payload tag_cancel (fun _ -> ())
  | Close -> with_payload tag_close (fun _ -> ())

let put_err b e =
  put_u8 b (err_code e);
  match e with
  | Trap m | Rejected m | Parse_failed m | Plan_failed m
  | Protocol_violation m | Server_error m ->
    put_str b m
  | Compile_failed (mode, detail) ->
    put_str b mode;
    put_str b detail
  | Timeout s -> put_f64 b s
  | Cancelled -> ()
  | Memory_budget_exceeded { budget_bytes; used_bytes } ->
    put_i64 b (Int64.of_int budget_bytes);
    put_i64 b (Int64.of_int used_bytes)
  | Overloaded { queue_depth; capacity } ->
    put_u32 b queue_depth;
    put_u32 b capacity
  | Worker_crashed { domain; detail } ->
    put_str b domain;
    put_str b detail

let encode_response = function
  | Hello_ok { server; version = v; fetch_size } ->
    with_payload tag_hello_ok (fun b ->
        put_u8 b v;
        put_str b server;
        put_u32 b fetch_size)
  | Prepare_ok { stmt_id; cached } ->
    with_payload tag_prepare_ok (fun b ->
        put_u32 b stmt_id;
        put_bool b cached)
  | Result { names; dtypes; total_rows; rows; more; exec_seconds } ->
    with_payload tag_result (fun b ->
        put_list b put_str names;
        put_list b put_str dtypes;
        put_u32 b total_rows;
        put_rows b rows;
        put_bool b more;
        put_f64 b exec_seconds)
  | Rows { rows; more } ->
    with_payload tag_rows (fun b ->
        put_rows b rows;
        put_bool b more)
  | Ack -> with_payload tag_ack (fun _ -> ())
  | Err e -> with_payload tag_err (fun b -> put_err b e)

(* ---- decoding --------------------------------------------------------- *)

exception Bad of string

type cursor = { buf : string; mutable pos : int }

let need c n =
  if c.pos + n > String.length c.buf then
    raise (Bad (Printf.sprintf "truncated payload (need %d bytes at %d of %d)"
                  n c.pos (String.length c.buf)))

let get_u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v =
    (Char.code c.buf.[c.pos] lsl 24)
    lor (Char.code c.buf.[c.pos + 1] lsl 16)
    lor (Char.code c.buf.[c.pos + 2] lsl 8)
    lor Char.code c.buf.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let get_i64 c =
  need c 8;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8)
           (Int64.of_int (Char.code c.buf.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_f64 c = Int64.float_of_bits (get_i64 c)

let get_str c =
  let n = get_u32 c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_bool c = get_u8 c <> 0

let get_list c get =
  let n = get_u32 c in
  (* each element consumes at least one byte, so a count beyond the
     remaining bytes is malformed — checked up front so a hostile
     count cannot drive a huge allocation loop *)
  need c n;
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (get c :: acc) in
  go n []

let get_rows c = get_list c (fun c -> get_list c get_str)

let get_priority c =
  match get_u8 c with
  | 0 -> Low
  | 1 -> Normal
  | 2 -> High
  | n -> raise (Bad (Printf.sprintf "unknown priority %d" n))

let finished c name v =
  if c.pos <> String.length c.buf then
    raise
      (Bad (Printf.sprintf "%d trailing bytes after %s frame"
              (String.length c.buf - c.pos) name));
  v

let decode payload of_tag =
  if String.length payload = 0 then Error "empty payload"
  else
    let c = { buf = payload; pos = 1 } in
    match of_tag (Char.code payload.[0]) c with
    | v -> Ok v
    | exception Bad m -> Error m

let decode_request payload =
  decode payload (fun tag c ->
      if tag = tag_hello then begin
        let v = get_u8 c in
        if v <> version then
          raise (Bad (Printf.sprintf "protocol version %d (want %d)" v version));
        let client = get_str c in
        let priority = get_priority c in
        let d = get_f64 c in
        let deadline_seconds =
          if Float.is_nan d then None
          else if d <= 0.0 || not (Float.is_finite d) then
            raise (Bad (Printf.sprintf "bad deadline %g" d))
          else Some d
        in
        finished c "hello" (Hello { client; priority; deadline_seconds })
      end
      else if tag = tag_prepare then finished c "prepare" (Prepare (get_str c))
      else if tag = tag_execute then finished c "execute" (Execute (get_str c))
      else if tag = tag_execute_prepared then
        finished c "execute_prepared" (Execute_prepared (get_u32 c))
      else if tag = tag_fetch then finished c "fetch" (Fetch (get_u32 c))
      else if tag = tag_cancel then finished c "cancel" Cancel
      else if tag = tag_close then finished c "close" Close
      else raise (Bad (Printf.sprintf "unknown request frame 0x%02x" tag)))

let get_err c =
  match get_u8 c with
  | 1 -> Trap (get_str c)
  | 2 ->
    let mode = get_str c in
    Compile_failed (mode, get_str c)
  | 3 -> Timeout (get_f64 c)
  | 4 -> Cancelled
  | 5 ->
    let budget_bytes = Int64.to_int (get_i64 c) in
    Memory_budget_exceeded { budget_bytes; used_bytes = Int64.to_int (get_i64 c) }
  | 6 ->
    let queue_depth = get_u32 c in
    Overloaded { queue_depth; capacity = get_u32 c }
  | 7 -> Rejected (get_str c)
  | 8 ->
    let domain = get_str c in
    Worker_crashed { domain; detail = get_str c }
  | 9 -> Parse_failed (get_str c)
  | 10 -> Plan_failed (get_str c)
  | 11 -> Protocol_violation (get_str c)
  | 12 -> Server_error (get_str c)
  | n -> raise (Bad (Printf.sprintf "unknown error code %d" n))

let decode_response payload =
  decode payload (fun tag c ->
      if tag = tag_hello_ok then begin
        let version = get_u8 c in
        let server = get_str c in
        finished c "hello_ok" (Hello_ok { server; version; fetch_size = get_u32 c })
      end
      else if tag = tag_prepare_ok then begin
        let stmt_id = get_u32 c in
        finished c "prepare_ok" (Prepare_ok { stmt_id; cached = get_bool c })
      end
      else if tag = tag_result then begin
        let names = get_list c get_str in
        let dtypes = get_list c get_str in
        let total_rows = get_u32 c in
        let rows = get_rows c in
        let more = get_bool c in
        finished c "result"
          (Result { names; dtypes; total_rows; rows; more; exec_seconds = get_f64 c })
      end
      else if tag = tag_rows then begin
        let rows = get_rows c in
        finished c "rows" (Rows { rows; more = get_bool c })
      end
      else if tag = tag_ack then finished c "ack" Ack
      else if tag = tag_err then finished c "err" (Err (get_err c))
      else raise (Bad (Printf.sprintf "unknown response frame 0x%02x" tag)))

(* ---- framed socket I/O ------------------------------------------------ *)

type read_error = [ `Eof | `Too_large of int | `Fault of string ]

type write_error = [ `Closed | `Fault of string ]

(* exactly [n] bytes, riding out partial reads and EINTR; [`Eof] on an
   orderly close mid-frame or a peer reset (both are "the connection
   is gone", which is all the session loop needs to know) *)
let really_read fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> Error `Eof
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
        ->
        Error `Eof
  in
  go 0

let read_frame ?(max_bytes = default_max_frame_bytes) fd =
  match Aeq_util.Failpoints.hit "net.read" with
  | exception Aeq_util.Failpoints.Injected site -> Error (`Fault site)
  | () -> (
    match really_read fd 4 with
    | Error `Eof -> Error `Eof
    | Ok hdr ->
      let len =
        (Char.code hdr.[0] lsl 24)
        lor (Char.code hdr.[1] lsl 16)
        lor (Char.code hdr.[2] lsl 8)
        lor Char.code hdr.[3]
      in
      if len < 1 || len > max_bytes then Error (`Too_large len)
      else (really_read fd len :> (string, read_error) result))

let write_frame fd frame =
  match Aeq_util.Failpoints.hit "net.write" with
  | exception Aeq_util.Failpoints.Injected site -> Error (`Fault site)
  | () ->
    let buf = Bytes.unsafe_of_string frame in
    let n = Bytes.length buf in
    let rec go off =
      if off = n then Ok ()
      else
        match Unix.write fd buf off (n - off) with
        | k -> go (off + k)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
        | exception
            Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
          ->
          Error `Closed
    in
    go 0

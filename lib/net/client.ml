module P = Protocol

type error = Wire of P.err | Transport of string

let error_to_string = function
  | Wire e -> P.err_to_string e
  | Transport m -> "transport: " ^ m

type t = {
  fd : Unix.file_descr;
  max_frame_bytes : int;
  mutable cl_fetch_size : int;
  mutable closed : bool;
}

let fetch_size t = t.cl_fetch_size

let transport_of_read = function
  | `Eof -> Transport "connection closed by server"
  | `Too_large n -> Transport (Printf.sprintf "oversized frame (%d bytes)" n)
  | `Fault m -> Transport ("injected fault at " ^ m)

let transport_of_write = function
  | `Closed -> Transport "connection closed by server"
  | `Fault m -> Transport ("injected fault at " ^ m)

let send t req =
  match P.write_frame t.fd (P.encode_request req) with
  | Ok () -> Ok ()
  | Error e -> Error (transport_of_write e)

(* Read the next response frame. Stray [Ack]s (the reply to a [Cancel]
   that raced the query's completion) are skipped unless asked for. *)
let rec recv ?(accept_ack = false) t =
  match P.read_frame ~max_bytes:t.max_frame_bytes t.fd with
  | Error e -> Error (transport_of_read e)
  | Ok payload -> (
    match P.decode_response payload with
    | Error m -> Error (Transport ("malformed response: " ^ m))
    | Ok P.Ack when not accept_ack -> recv ~accept_ack t
    | Ok resp -> Ok resp)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let connect ?(host = "127.0.0.1") ?(client = "aeq-client")
    ?(priority = P.Normal) ?deadline_seconds ~port () =
  match Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Transport (Unix.error_message e))
  | fd -> (
    let fail e =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e
    in
    match
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
    with
    | exception Unix.Unix_error (e, _, _) ->
      fail (Transport (Unix.error_message e))
    | () -> (
      let t =
        {
          fd;
          max_frame_bytes = P.default_max_frame_bytes;
          cl_fetch_size = 256;
          closed = false;
        }
      in
      match
        let* () = send t (P.Hello { client; priority; deadline_seconds }) in
        recv t
      with
      | Ok (P.Hello_ok { fetch_size; _ }) ->
        t.cl_fetch_size <- fetch_size;
        Ok t
      | Ok (P.Err e) -> fail (Wire e)
      | Ok _ -> fail (Transport "unexpected handshake response")
      | Error e -> fail e))

type rows = {
  names : string list;
  dtypes : string list;
  rows : string list list;
  exec_seconds : float;
}

let prepare t sql =
  let* () = send t (P.Prepare sql) in
  match recv t with
  | Ok (P.Prepare_ok { stmt_id; cached }) -> Ok (stmt_id, cached)
  | Ok (P.Err e) -> Error (Wire e)
  | Ok _ -> Error (Transport "unexpected response to Prepare")
  | Error e -> Error e

let rec fetch_rest t acc =
  let* () = send t (P.Fetch t.cl_fetch_size) in
  match recv t with
  | Ok (P.Rows { rows; more }) ->
    let acc = acc @ rows in
    if more then fetch_rest t acc else Ok acc
  | Ok (P.Err e) -> Error (Wire e)
  | Ok _ -> Error (Transport "unexpected response to Fetch")
  | Error e -> Error e

let run_result t = function
  | P.Result { names; dtypes; total_rows = _; rows; more; exec_seconds } ->
    let* rows = if more then fetch_rest t rows else Ok rows in
    Ok { names; dtypes; rows; exec_seconds }
  | P.Err e -> Error (Wire e)
  | _ -> Error (Transport "unexpected response to Execute")

let execute t sql =
  let* () = send t (P.Execute sql) in
  let* resp = recv t in
  run_result t resp

let execute_prepared t stmt_id =
  let* () = send t (P.Execute_prepared stmt_id) in
  let* resp = recv t in
  run_result t resp

let cancel t = send t P.Cancel

let close t =
  if not t.closed then begin
    t.closed <- true;
    ignore (P.write_frame t.fd (P.encode_request P.Close));
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(** The wire protocol: length-prefixed binary frames.

    Every frame is a 4-byte big-endian payload length followed by the
    payload; the payload's first byte is the frame type, the rest is
    the body (see DESIGN.md "Wire protocol" for the exact layout of
    every frame). The codec is strict both ways: {!decode_request} /
    {!decode_response} never raise on hostile input — a truncated,
    oversized or malformed payload comes back as [Error reason], which
    the server answers with a structured {!err} frame or a close,
    never a crash.

    Body primitives: [u8], [u32]/[i64] big-endian, [f64] as IEEE-754
    bits in an [i64], strings as [u32] length + bytes, lists as [u32]
    count + elements. *)

val version : int
(** Protocol version carried in [Hello] / [Hello_ok] (currently 1). *)

val default_max_frame_bytes : int
(** Frame-size bound both sides enforce by default (4 MiB). *)

(** Mirrors {!Aeq_exec.Scheduler.priority}; carried in [Hello] so the
    session's queries enter the admission queue in the right class. *)
type priority = Low | Normal | High

val priority_of_scheduler : Aeq_exec.Scheduler.priority -> priority

val priority_to_scheduler : priority -> Aeq_exec.Scheduler.priority

(** Client-to-server frames. *)
type request =
  | Hello of {
      client : string;  (** client name, for logs/metrics *)
      priority : priority;  (** admission class for the session *)
      deadline_seconds : float option;
          (** per-query deadline applied to every execute *)
    }  (** must be the first frame on a fresh connection *)
  | Prepare of string  (** plan + compile; returns [Prepare_ok] *)
  | Execute of string  (** one-shot execute of a SQL text *)
  | Execute_prepared of int  (** execute a [Prepare_ok] handle *)
  | Fetch of int
      (** next page (at most this many rows) of the pending result *)
  | Cancel
      (** cancel the in-flight query (sent while an execute is
          pending); idle sessions get an [Ack] *)
  | Close  (** finish the session ([Ack], then the server closes) *)

(** The structured error taxonomy over the wire: every
    {!Aeq_exec.Query_error.t} constructor, plus the front-end's own
    failure classes. *)
type err =
  | Trap of string
  | Compile_failed of string * string  (** mode name, detail *)
  | Timeout of float
  | Cancelled
  | Memory_budget_exceeded of { budget_bytes : int; used_bytes : int }
  | Overloaded of { queue_depth : int; capacity : int }
      (** also what a connection over the server's connection limit is
          shed with — [queue_depth]/[capacity] then count sessions *)
  | Rejected of string
  | Worker_crashed of { domain : string; detail : string }
  | Parse_failed of string  (** the SQL text does not parse *)
  | Plan_failed of string  (** the statement cannot be planned *)
  | Protocol_violation of string
      (** malformed/oversized/out-of-order frame; the server answers
          with this and closes the session *)
  | Server_error of string  (** anything else, printed *)

val err_of_query_error : Aeq_exec.Query_error.t -> err

val err_to_string : err -> string

(** Server-to-client frames. *)
type response =
  | Hello_ok of { server : string; version : int; fetch_size : int }
  | Prepare_ok of { stmt_id : int; cached : bool }
      (** [cached]: the statement was already resident in the plan
          cache (the compile cost was paid by an earlier session) *)
  | Result of {
      names : string list;
      dtypes : string list;
      total_rows : int;
      rows : string list list;  (** first page, decoded cells *)
      more : bool;  (** further pages pending; [Fetch] to page *)
      exec_seconds : float;
    }
  | Rows of { rows : string list list; more : bool }  (** a [Fetch] page *)
  | Ack
  | Err of err

(* ---- codec ----------------------------------------------------------- *)

val encode_request : request -> string
(** The complete frame: length prefix + payload. *)

val encode_response : response -> string

val decode_request : string -> (request, string) result
(** Decode a payload (frame minus the length prefix). Total: hostile
    input yields [Error], never an exception. *)

val decode_response : string -> (response, string) result

(* ---- framed socket I/O ----------------------------------------------- *)

type read_error =
  [ `Eof  (** orderly close (or reset) from the peer *)
  | `Too_large of int  (** declared payload length over the bound *)
  | `Fault of string  (** injected [net.read] fault *) ]

val read_frame :
  ?max_bytes:int -> Unix.file_descr -> (string, read_error) result
(** Read one frame; returns the payload. Blocks until a full frame,
    EOF or error. Evaluates the ["net.read"] failpoint first. A
    [`Too_large] frame leaves the stream unsynchronized — the caller
    must answer with [Protocol_violation] and close. *)

type write_error = [ `Closed  (** peer gone (EPIPE/reset) *)
                   | `Fault of string  (** injected [net.write] fault *) ]

val write_frame : Unix.file_descr -> string -> (unit, write_error) result
(** Write one complete frame (as built by the encoders). Evaluates the
    ["net.write"] failpoint first. *)

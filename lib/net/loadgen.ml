module P = Protocol

type config = {
  host : string;
  port : int;
  rate : float;
  duration_seconds : float;
  connections : int;
  seed : int64;
  statements : string list;
  use_prepared : bool;
  priority : P.priority;
  deadline_seconds : float option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7878;
    rate = 50.0;
    duration_seconds = 5.0;
    connections = 8;
    seed = 42L;
    statements = [ "select count(*) from lineitem" ];
    use_prepared = false;
    priority = P.Normal;
    deadline_seconds = None;
  }

type summary = {
  offered : int;
  attempted : int;
  completed : int;
  failed : (string * int) list;
  connect_errors : int;
  offered_rate : float;
  achieved_rate : float;
  wall_seconds : float;
  mean_seconds : float;
  max_seconds : float;
  p50_seconds : float;
  p95_seconds : float;
  p99_seconds : float;
}

(* ---- log-bucketed latency histogram ----------------------------------- *)
(* bucket k holds latencies in (ub(k-1), ub(k)], ub(k) = 1µs × 2^k;
   the last bucket is the overflow *)

let n_buckets = 64

let bucket_ub k = 1e-6 *. Float.of_int (1 lsl min k 62)

let bucket_of lat =
  let rec find k = if k >= n_buckets - 1 || lat <= bucket_ub k then k else find (k + 1) in
  find 0

type worker_stats = {
  hist : int array;
  mutable sum : float;
  mutable count : int;
  mutable max : float;
  errors : (string, int) Hashtbl.t;
  mutable w_attempted : int;
  mutable w_completed : int;
  mutable last_finish : float;
}

let new_stats () =
  {
    hist = Array.make n_buckets 0;
    sum = 0.0;
    count = 0;
    max = 0.0;
    errors = Hashtbl.create 8;
    w_attempted = 0;
    w_completed = 0;
    last_finish = 0.0;
  }

let record_latency w lat =
  let k = bucket_of lat in
  w.hist.(k) <- w.hist.(k) + 1;
  w.sum <- w.sum +. lat;
  w.count <- w.count + 1;
  if lat > w.max then w.max <- lat

let record_error w label =
  Hashtbl.replace w.errors label
    (1 + Option.value ~default:0 (Hashtbl.find_opt w.errors label))

let error_label = function
  | Client.Transport _ -> "transport"
  | Client.Wire e -> (
    match e with
    | P.Trap _ -> "trap"
    | P.Compile_failed _ -> "compile_failed"
    | P.Timeout _ -> "timeout"
    | P.Cancelled -> "cancelled"
    | P.Memory_budget_exceeded _ -> "memory_budget_exceeded"
    | P.Overloaded _ -> "overloaded"
    | P.Rejected _ -> "rejected"
    | P.Worker_crashed _ -> "worker_crashed"
    | P.Parse_failed _ -> "parse_failed"
    | P.Plan_failed _ -> "plan_failed"
    | P.Protocol_violation _ -> "protocol_violation"
    | P.Server_error _ -> "server_error")

(* percentile with geometric interpolation inside the winning bucket *)
let percentile hist count q =
  if count = 0 then 0.0
  else begin
    let target = q *. Float.of_int count in
    let rec walk k cum =
      if k >= n_buckets then bucket_ub (n_buckets - 1)
      else begin
        let c = hist.(k) in
        if Float.of_int (cum + c) >= target && c > 0 then begin
          let lo = if k = 0 then bucket_ub 0 /. 2.0 else bucket_ub (k - 1) in
          let frac = (target -. Float.of_int cum) /. Float.of_int c in
          lo *. (2.0 ** frac)
        end
        else walk (k + 1) (cum + c)
      end
    in
    walk 0 0
  end

(* ---- the run ----------------------------------------------------------- *)

let build_schedule ~rate ~duration ~seed =
  let rng = Aeq_util.Prng.create seed in
  let acc = ref [] in
  let t = ref 0.0 in
  let n = ref 0 in
  let cap = 2_000_000 in
  let continue = ref true in
  while !continue do
    let u = Aeq_util.Prng.float rng 1.0 in
    let gap = -.Float.log (1.0 -. u) /. rate in
    t := !t +. gap;
    if !t > duration || !n >= cap then continue := false
    else begin
      acc := !t :: !acc;
      incr n
    end
  done;
  Array.of_list (List.rev !acc)

let worker cfg ~schedule ~start ~stop_after ~cursor ~stmts w =
  match
    Client.connect ~host:cfg.host ~client:"aeq-load" ~priority:cfg.priority
      ?deadline_seconds:cfg.deadline_seconds ~port:cfg.port ()
  with
  | Error e ->
    record_error w ("connect:" ^ error_label e);
    w.last_finish <- Aeq_util.Clock.now ()
  | Ok c ->
    Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
    let prepared =
      if not cfg.use_prepared then [||]
      else
        Array.map
          (fun sql ->
            match Client.prepare c sql with
            | Ok (id, _) -> Some id
            | Error e ->
              record_error w ("prepare:" ^ error_label e);
              None)
          stmts
    in
    let n = Array.length schedule in
    let n_stmts = Array.length stmts in
    let rec loop () =
      let i = Atomic.fetch_and_add cursor 1 in
      if i < n && Aeq_util.Clock.now () < stop_after then begin
        let at = start +. schedule.(i) in
        let now = Aeq_util.Clock.now () in
        if at > now then Thread.delay (at -. now);
        w.w_attempted <- w.w_attempted + 1;
        let si = i mod n_stmts in
        let outcome =
          if cfg.use_prepared then
            match prepared.(si) with
            | Some id -> Client.execute_prepared c id
            | None -> Client.execute c stmts.(si)
          else Client.execute c stmts.(si)
        in
        let fin = Aeq_util.Clock.now () in
        w.last_finish <- fin;
        (match outcome with
        | Ok _ ->
          w.w_completed <- w.w_completed + 1;
          (* from the scheduled arrival, not the send: queueing delay
             behind a slow server is part of the latency *)
          record_latency w (fin -. at)
        | Error e ->
          record_error w (error_label e);
          (* a transport failure means the session is gone *)
          match e with Client.Transport _ -> raise Exit | Client.Wire _ -> ());
        loop ()
      end
    in
    (try loop () with Exit -> ())

let run cfg =
  if cfg.rate <= 0.0 then invalid_arg "Loadgen.run: rate must be positive";
  if cfg.duration_seconds <= 0.0 then
    invalid_arg "Loadgen.run: duration must be positive";
  if cfg.connections <= 0 then
    invalid_arg "Loadgen.run: connections must be positive";
  if cfg.statements = [] then invalid_arg "Loadgen.run: no statements";
  let schedule =
    build_schedule ~rate:cfg.rate ~duration:cfg.duration_seconds ~seed:cfg.seed
  in
  let stmts = Array.of_list cfg.statements in
  let cursor = Atomic.make 0 in
  let start = Aeq_util.Clock.now () in
  let stop_after = start +. (2.0 *. cfg.duration_seconds) +. 5.0 in
  let stats = Array.init cfg.connections (fun _ -> new_stats ()) in
  let threads =
    Array.mapi
      (fun i w ->
        Thread.create
          (fun () -> worker cfg ~schedule ~start ~stop_after ~cursor ~stmts w)
          () |> fun th -> (i, th))
      stats
  in
  Array.iter (fun (_, th) -> Thread.join th) threads;
  (* merge *)
  let hist = Array.make n_buckets 0 in
  let sum = ref 0.0 and count = ref 0 and maxl = ref 0.0 in
  let attempted = ref 0 and completed = ref 0 and last = ref start in
  let errors : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let connect_errors = ref 0 in
  Array.iter
    (fun w ->
      Array.iteri (fun k c -> hist.(k) <- hist.(k) + c) w.hist;
      sum := !sum +. w.sum;
      count := !count + w.count;
      if w.max > !maxl then maxl := w.max;
      attempted := !attempted + w.w_attempted;
      completed := !completed + w.w_completed;
      if w.last_finish > !last then last := w.last_finish;
      Hashtbl.iter
        (fun label c ->
          if String.length label > 8 && String.sub label 0 8 = "connect:" then
            incr connect_errors
          else
            Hashtbl.replace errors label
              (c + Option.value ~default:0 (Hashtbl.find_opt errors label)))
        w.errors)
    stats;
  let failed =
    Hashtbl.fold (fun l c acc -> (l, c) :: acc) errors []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let wall = Float.max (!last -. start) 1e-9 in
  let offered = Array.length schedule in
  {
    offered;
    attempted = !attempted;
    completed = !completed;
    failed;
    connect_errors = !connect_errors;
    offered_rate = Float.of_int offered /. cfg.duration_seconds;
    achieved_rate = Float.of_int !completed /. wall;
    wall_seconds = wall;
    mean_seconds = (if !count = 0 then 0.0 else !sum /. Float.of_int !count);
    max_seconds = !maxl;
    (* bucket interpolation can overshoot the largest sample; clamp so the
       reported tail never exceeds the observed maximum *)
    p50_seconds = Float.min !maxl (percentile hist !count 0.50);
    p95_seconds = Float.min !maxl (percentile hist !count 0.95);
    p99_seconds = Float.min !maxl (percentile hist !count 0.99);
  }

let json_float x = Printf.sprintf "%.9g" x

let summary_to_json ?(extra = []) s =
  let fields =
    [
      ("loop", "\"open\"");
      ("offered", string_of_int s.offered);
      ("attempted", string_of_int s.attempted);
      ("completed", string_of_int s.completed);
      ("connect_errors", string_of_int s.connect_errors);
      ("offered_rate_qps", json_float s.offered_rate);
      ("achieved_rate_qps", json_float s.achieved_rate);
      ("wall_seconds", json_float s.wall_seconds);
      ("mean_seconds", json_float s.mean_seconds);
      ("max_seconds", json_float s.max_seconds);
      ("p50_seconds", json_float s.p50_seconds);
      ("p95_seconds", json_float s.p95_seconds);
      ("p99_seconds", json_float s.p99_seconds);
      ( "errors",
        "{"
        ^ String.concat ","
            (List.map
               (fun (l, c) -> Printf.sprintf "%S:%d" l c)
               s.failed)
        ^ "}" );
    ]
    @ extra
  in
  "{"
  ^ String.concat ",\n " (List.map (fun (k, v) -> Printf.sprintf "%S: %s" k v) fields)
  ^ "}\n"

(** The wire server: a socket front-end over [Engine.submit].

    One accept thread multiplexes the wire listener, the optional
    metrics/health HTTP listener and a shutdown wake pipe; each
    accepted wire connection gets a session thread speaking the
    {!Protocol} frame protocol. Sessions are systhreads, not domains —
    they spend their life blocked on socket I/O or on a scheduler
    ticket, so they must not consume the (small, fixed) domain budget
    the worker pool and dispatchers are sized against.

    A session is a [Hello] handshake followed by
    [Prepare]/[Execute]/[Execute_prepared]/[Fetch]/[Cancel]/[Close]
    frames. Queries enter the engine through [Engine.submit], i.e.
    through admission control: the session's [Hello] priority and
    deadline ride on every submit, a full queue comes back as a
    structured [Overloaded] frame, and drain rejects as [Rejected].
    While a query is in flight the session polls its ticket and
    [select]s the socket, so an out-of-band [Cancel] frame cancels the
    running query at the next morsel boundary.

    Overload is shed at the edge too: a connection over
    [max_connections] is answered with one [Err Overloaded] frame and
    closed, before a session (or any engine work) exists for it.

    Shutdown: {!drain} (the SIGTERM path) stops accepting, lets
    in-flight queries finish through [Engine.drain] — which walks the
    engine's health gauge Serving → Draining → Stopped — flushes each
    session's final response, then closes every socket. {!stop} is the
    test-oriented immediate variant: it stops serving without
    draining or closing the engine. *)

type config = {
  port : int;  (** wire listener port; 0 picks an ephemeral port *)
  metrics_port : int option;
      (** HTTP listener for [GET /metrics] (Prometheus text
          exposition) and [GET /healthz]; [Some 0] picks an ephemeral
          port, [None] disables HTTP *)
  max_connections : int;
      (** connection limit; excess connections are shed with one
          structured [Overloaded] error frame *)
  fetch_size : int;  (** rows per [Result]/[Rows] page *)
  max_frame_bytes : int;  (** per-frame size bound (both directions) *)
  server_name : string;  (** advertised in [Hello_ok] *)
  mode : Aeq_exec.Driver.mode;  (** execution mode for submitted queries *)
}

val default_config : config
(** Port 7878, no HTTP listener, 64 connections, 256-row pages,
    {!Protocol.default_max_frame_bytes}, [Adaptive]. *)

type t

val start : ?config:config -> Aeq.Engine.t -> t
(** Bind the listeners (loopback) and start the accept thread.
    @raise Unix.Unix_error when a port cannot be bound. *)

val port : t -> int
(** The bound wire port (resolves an ephemeral request). *)

val metrics_port : t -> int option

val active_sessions : t -> int

val connections_shed : t -> int
(** Connections refused over [max_connections] since start. *)

val draining : t -> bool

val drain : ?deadline_seconds:float -> t -> bool
(** Graceful shutdown, idempotent: stop accepting (the listener
    sockets close, so new connects are refused at the TCP level),
    drain the engine — in-flight queries finish, queued ones complete,
    admission rejects, the engine closes — wait for busy sessions to
    flush their final response, then close every session socket and
    join the session threads. Returns [true] if the engine reached
    quiescence before [deadline_seconds] (default 30). *)

val stop : t -> unit
(** Immediate shutdown for in-process tests and benches: stop
    accepting, close every session socket, join the threads. The
    engine is left untouched (not drained, not closed). Idempotent;
    a no-op after {!drain}. *)

val install_signal_handlers : ?deadline_seconds:float -> t -> unit
(** Wire SIGTERM and SIGINT to {!drain}: the handler only flips an
    atomic flag; a monitor thread notices and runs the drain (signal
    handlers must not take locks). A second signal force-exits the
    process. *)

val wait : t -> unit
(** Block until the server is stopped (by {!drain}, {!stop} or a
    signal) — the main thread of [aeq_server]. *)

(** A blocking wire-protocol client: one TCP connection, one session.

    Thin by design — it speaks {!Protocol} frames over a socket and
    hands back decoded rows or the server's structured error. Used by
    the open-loop load generator ({!Loadgen}), the [aeq_load] CLI and
    the protocol test suite. Not thread-safe: one thread per client
    (the load generator gives each worker its own connection). *)

(** Either the server's structured error frame, or a transport-level
    failure (connect refused, connection reset, a malformed frame from
    the server). *)
type error = Wire of Protocol.err | Transport of string

val error_to_string : error -> string

type t

val connect :
  ?host:string ->
  ?client:string ->
  ?priority:Protocol.priority ->
  ?deadline_seconds:float ->
  port:int ->
  unit ->
  (t, error) result
(** TCP connect + [Hello] handshake. [host] defaults to 127.0.0.1;
    [priority] (default [Normal]) and [deadline_seconds] ride on every
    query this session submits. A server over its connection limit
    answers the connect with one [Overloaded] error frame —
    surfaced as [Error (Wire (Overloaded _))]. *)

val fetch_size : t -> int
(** The server's page size, from [Hello_ok]. *)

(** A complete decoded result (all pages fetched). *)
type rows = {
  names : string list;
  dtypes : string list;
  rows : string list list;
  exec_seconds : float;  (** server-side execution wall time *)
}

val prepare : t -> string -> (int * bool, error) result
(** [prepare t sql] returns [(stmt_id, cached)]; [cached] means an
    earlier session already paid the compile cost. *)

val execute : t -> string -> (rows, error) result
(** One-shot execute; transparently [Fetch]es every remaining page. *)

val execute_prepared : t -> int -> (rows, error) result

val cancel : t -> (unit, error) result
(** Send an out-of-band [Cancel]. Meaningful from a second thread
    while [execute] blocks — the server cancels the in-flight query at
    the next morsel boundary and [execute] returns
    [Error (Wire Cancelled)]. From the session's own thread (idle
    session) the server just [Ack]s. *)

val close : t -> unit
(** Best-effort [Close] + socket close. Idempotent. *)

(** The open-loop load generator.

    [aeq_cli --clients] is a {e closed loop}: each worker submits,
    waits for the result, submits again — so when the engine slows
    down, the offered load politely slows down with it, and measured
    latency hides the backlog a real arrival process would build
    (coordinated omission). This module drives the wire server the
    way external clients do: arrivals follow a seeded Poisson process
    at a fixed offered rate, each arrival is served by the next free
    connection {e when its time comes, whether or not earlier queries
    have finished}, and latency is measured from the {e scheduled}
    arrival instant — queueing delay the server causes is part of the
    number, not silently dropped.

    Mechanics: the arrival schedule (exponential gaps, splitmix64
    seed) is precomputed; [connections] worker threads, one wire
    connection each, race down the schedule through one atomic
    cursor. Workers record latencies in per-worker log-bucketed
    histograms (power-of-two buckets from 1µs), merged after the join;
    percentiles interpolate geometrically within a bucket. An
    overloaded run is bounded: workers stop starting new arrivals
    past [2 × duration + 5 s], and the unserved tail is reported
    ([attempted] < [offered]). *)

type config = {
  host : string;
  port : int;
  rate : float;  (** offered arrival rate, queries/second (all workers) *)
  duration_seconds : float;  (** length of the arrival schedule *)
  connections : int;  (** worker threads = wire connections *)
  seed : int64;  (** arrival-schedule PRNG seed *)
  statements : string list;  (** round-robin by arrival index *)
  use_prepared : bool;
      (** [Prepare] once per connection, then [Execute_prepared] *)
  priority : Protocol.priority;
  deadline_seconds : float option;
}

val default_config : config
(** 127.0.0.1:7878, 50 qps for 5 s over 8 connections, seed 42,
    one metadata statement, not prepared, [Normal] priority. *)

type summary = {
  offered : int;  (** arrivals in the schedule *)
  attempted : int;  (** arrivals actually sent (= offered unless the
                        run hit the overload time bound) *)
  completed : int;  (** queries answered with rows *)
  failed : (string * int) list;
      (** error label → count (structured wire errors and transport
          failures), sorted by count *)
  connect_errors : int;  (** workers that could not establish a session *)
  offered_rate : float;  (** offered / duration *)
  achieved_rate : float;  (** completed / wall_seconds *)
  wall_seconds : float;  (** first scheduled arrival → last completion *)
  mean_seconds : float;
  max_seconds : float;
  p50_seconds : float;
  p95_seconds : float;
  p99_seconds : float;
}

val run : config -> summary
(** Blocks for the whole run. @raise Invalid_argument on a non-positive
    rate, duration or connection count, or an empty statement list. *)

val summary_to_json : ?extra:(string * string) list -> summary -> string
(** One JSON object; [extra] appends literal key/value pairs (values
    must already be valid JSON). *)

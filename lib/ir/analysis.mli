(** Size metrics and dataflow analyses over IR functions.

    [instruction_count] is the measure the paper correlates with
    compilation time (Fig. 6) and that the adaptive controller feeds
    into the compile-cost model.

    {!liveness} is precise per-block SSA liveness computed on the
    {!Dataflow} framework, in the φ-as-parallel-copies model shared by
    the register allocator and the bytecode translator (the paper's
    Figs. 9–12 compute a single conservative interval per value; this
    is the exact solution the verifier checks those intervals
    against). *)

val instruction_count : Func.t -> int
(** φ nodes and terminators included. *)

val block_count : Func.t -> int

val value_count : Func.t -> int

val call_count : Func.t -> int

val module_instruction_count : Func.t list -> int

type liveness = {
  live_in : Dataflow.Bitset.t array;
  live_out : Dataflow.Bitset.t array;
}
(** Indexed by block id, over value-id universes. [live_in.(b)] holds
    the values live at the block head (φ destinations written by the
    predecessors included when used); [live_out.(b)] those live after
    the terminator, before the successor's own code runs. *)

val liveness : Func.t -> liveness

val term_uses : Block.t -> use:(Instr.value -> unit) -> unit
(** The values the terminator itself reads (branch condition / return
    operand). *)

val edge_copies :
  Func.t -> Block.t -> def:(int -> unit) -> use:(Instr.value -> unit) -> unit
(** Enumerate the φ parallel copies executed at the end of the given
    block, one [def] per successor-φ destination and one [use] per
    incoming value contributed by this block — the copy-model
    semantics of φs that {!liveness} and [Bc_verify] share. *)

let instruction_count = Func.n_instrs

let block_count = Func.n_blocks

let value_count (f : Func.t) = f.Func.n_values

let call_count (f : Func.t) =
  let n = ref 0 in
  Func.iter_instrs f (fun _ i -> match i with Instr.Call _ -> incr n | _ -> ());
  !n

let module_instruction_count fs = List.fold_left (fun acc f -> acc + instruction_count f) 0 fs

(* ---- liveness -------------------------------------------------------- *)

(* SSA liveness in the copy model the translator and the register
   allocator share: a φ materialises as parallel copies at the end of
   each predecessor, so its destination is *defined* at the end of
   every incoming block (not at its own block head) and its incoming
   values are *used* there, together with the branch condition. This
   matches [Regalloc.iter_mentions] exactly, which is what lets
   [Bc_verify] cross-check slot reuse against it. *)

let term_uses (blk : Block.t) ~use =
  (match blk.Block.term with
  | Instr.CondBr { cond; _ } -> use cond
  | Instr.Ret (Some v) -> use v
  | Instr.Br _ | Instr.Ret None | Instr.Abort _ -> ())

let edge_copies (f : Func.t) (blk : Block.t) ~def ~use =
  List.iter
    (fun s ->
      Array.iter
        (fun (p : Instr.phi) ->
          def p.Instr.dst;
          Array.iter (fun (pred, v) -> if pred = blk.Block.id then use v) p.Instr.incoming)
        (Func.block f s).Block.phis)
    (Block.successors blk)

type liveness = {
  live_in : Dataflow.Bitset.t array;
  live_out : Dataflow.Bitset.t array;
}

let liveness (f : Func.t) =
  let nv = f.Func.n_values in
  let module L = struct
    type t = Dataflow.Bitset.t

    let bottom () = Dataflow.Bitset.create nv

    let copy = Dataflow.Bitset.copy

    let join_into = Dataflow.Bitset.union_into
  end in
  let module D = Dataflow.Make (L) in
  let use live = function
    | Instr.Vreg r -> Dataflow.Bitset.add live r
    | Instr.Imm _ | Instr.Fimm _ -> ()
  in
  let transfer bid out =
    let live = Dataflow.Bitset.copy out in
    let blk = Func.block f bid in
    (* terminator position: the outgoing edges' φ copies kill their
       destinations and read their sources; the branch condition is
       read here too (it must survive the copies, so it is added after
       the kills) *)
    edge_copies f blk ~def:(Dataflow.Bitset.remove live) ~use:(fun _ -> ());
    term_uses blk ~use:(use live);
    edge_copies f blk ~def:(fun _ -> ()) ~use:(use live);
    for i = Array.length blk.Block.instrs - 1 downto 0 do
      let ins = blk.Block.instrs.(i) in
      (match Instr.dst_of ins with
      | Some d -> Dataflow.Bitset.remove live d
      | None -> ());
      List.iter (use live) (Instr.operands ins)
    done;
    (* φs of this block define nothing here: in the copy model their
       destinations were written at the end of each predecessor, so a
       used φ destination stays in live_in *)
    live
  in
  let r = D.run Dataflow.Backward f ~transfer in
  { live_in = r.D.block_in; live_out = r.D.block_out }

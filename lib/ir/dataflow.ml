(* Generic worklist dataflow over the CFG.

   Analyses are expressed as a join-semilattice plus a block transfer
   function; the solver iterates to a fixpoint, seeding the worklist
   in (reverse) RPO so that typical analyses converge in one or two
   sweeps on the reducible CFGs the builder produces. Transfer
   functions at instruction granularity are composed into block
   transfers with [of_sites]. *)

module Bitset = struct
  type t = int array

  (* 32 bits per word keeps [1 lsl (i land mask)] well inside OCaml's
     63-bit native int on every platform. *)
  let shift = 5

  let mask = 31

  let create n = Array.make ((Stdlib.max n 0 + mask) lsr shift) 0

  let mem t i = (t.(i lsr shift) lsr (i land mask)) land 1 = 1

  let add t i =
    let w = i lsr shift in
    t.(w) <- t.(w) lor (1 lsl (i land mask))

  let remove t i =
    let w = i lsr shift in
    t.(w) <- t.(w) land lnot (1 lsl (i land mask))

  let copy = Array.copy

  let equal (a : t) b = a = b

  let union_into ~into src =
    let changed = ref false in
    for w = 0 to Array.length src - 1 do
      let v = into.(w) lor src.(w) in
      if v <> into.(w) then begin
        into.(w) <- v;
        changed := true
      end
    done;
    !changed

  let iter f t =
    Array.iteri
      (fun w word ->
        if word <> 0 then
          for b = 0 to mask do
            if (word lsr b) land 1 = 1 then f ((w lsl shift) lor b)
          done)
      t

  let cardinal t =
    let n = ref 0 in
    iter (fun _ -> incr n) t;
    !n

  let elements t =
    let acc = ref [] in
    iter (fun i -> acc := i :: !acc) t;
    List.rev !acc
end

type direction = Forward | Backward

type site = At_phis | At_instr of int | At_term

let sites direction (b : Block.t) =
  let n = Array.length b.Block.instrs in
  let fwd = (At_phis :: List.init n (fun i -> At_instr i)) @ [ At_term ] in
  match direction with Forward -> fwd | Backward -> List.rev fwd

module type LATTICE = sig
  type t

  val bottom : unit -> t

  val copy : t -> t

  val join_into : into:t -> t -> bool
  (** [join_into ~into v] sets [into := into ⊔ v]; returns whether
      [into] changed. *)
end

module Make (L : LATTICE) = struct
  type result = { block_in : L.t array; block_out : L.t array }

  let run direction (f : Func.t) ~transfer =
    let n = Func.n_blocks f in
    let block_in = Array.init n (fun _ -> L.bottom ()) in
    let block_out = Array.init n (fun _ -> L.bottom ()) in
    let preds = Cfg.predecessors f in
    let succs = Array.map Block.successors f.Func.blocks in
    let on_list = Array.make n false in
    let queue = Queue.create () in
    let push b =
      if not on_list.(b) then begin
        on_list.(b) <- true;
        Queue.add b queue
      end
    in
    (* Blocks are RPO-numbered by repo convention; seeding in analysis
       order makes the common case a single sweep. Unreachable blocks
       are still visited (their solution is the transfer of bottom). *)
    (match direction with
    | Forward -> for b = 0 to n - 1 do push b done
    | Backward -> for b = n - 1 downto 0 do push b done);
    while not (Queue.is_empty queue) do
      let b = Queue.take queue in
      on_list.(b) <- false;
      match direction with
      | Forward ->
        List.iter (fun p -> ignore (L.join_into ~into:block_in.(b) block_out.(p))) preds.(b);
        if L.join_into ~into:block_out.(b) (transfer b block_in.(b)) then
          List.iter push succs.(b)
      | Backward ->
        List.iter (fun s -> ignore (L.join_into ~into:block_out.(b) block_in.(s))) succs.(b);
        if L.join_into ~into:block_in.(b) (transfer b block_out.(b)) then
          List.iter push preds.(b)
    done;
    { block_in; block_out }

  let of_sites direction (f : Func.t) ~site_transfer =
    let transfer b v =
      let acc = ref (L.copy v) in
      List.iter
        (fun s -> acc := site_transfer b s !acc)
        (sites direction (Func.block f b));
      !acc
    in
    run direction f ~transfer
end

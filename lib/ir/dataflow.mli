(** Generic worklist dataflow framework.

    An analysis is a join-semilattice ({!LATTICE}) plus a transfer
    function; {!Make.run} solves it to a fixpoint over the CFG in
    either direction. Block-granularity transfers are the primitive;
    {!Make.of_sites} composes instruction-granularity transfers (one
    per φ bundle / instruction / terminator {!site}) into a block
    transfer. Liveness ({!Analysis.liveness}) and the verifier's
    checks are built on top of this. *)

(** Dense mutable bit sets, the workhorse lattice carrier for
    value-indexed analyses. *)
module Bitset : sig
  type t

  val create : int -> t
  (** [create n] is the empty set over universe [0..n-1]. *)

  val mem : t -> int -> bool

  val add : t -> int -> unit

  val remove : t -> int -> unit

  val copy : t -> t

  val equal : t -> t -> bool

  val union_into : into:t -> t -> bool
  (** Destructive union; returns whether [into] grew. *)

  val iter : (int -> unit) -> t -> unit

  val cardinal : t -> int

  val elements : t -> int list
end

type direction = Forward | Backward

(** A program point within a block: the φ bundle, one instruction, or
    the terminator. *)
type site = At_phis | At_instr of int | At_term

val sites : direction -> Block.t -> site list
(** The block's sites in the order the given direction visits them. *)

module type LATTICE = sig
  type t

  val bottom : unit -> t

  val copy : t -> t

  val join_into : into:t -> t -> bool
  (** [join_into ~into v] sets [into := into ⊔ v]; returns whether
      [into] changed. *)
end

module Make (L : LATTICE) : sig
  type result = { block_in : L.t array; block_out : L.t array }
  (** For [Forward], [block_in] is the join over predecessors and
      [block_out] its transfer; for [Backward] the roles flip
      ([block_out] joins successor [block_in]s). *)

  val run : direction -> Func.t -> transfer:(int -> L.t -> L.t) -> result
  (** [transfer b v] must be monotone and must not mutate [v]. *)

  val of_sites :
    direction -> Func.t -> site_transfer:(int -> site -> L.t -> L.t) -> result
  (** Builds the block transfer by folding [site_transfer b site] over
      the block's sites in direction order, starting from a copy of
      the edge value (so site transfers may mutate their accumulator
      in place). *)
end

(** Deep structural and SSA well-formedness checks.

    {!diagnostics} collects {e every} violation — with (function,
    block, instruction) context — instead of stopping at the first:
    unique definitions, branch targets, block numbering, φ incoming
    edges matching predecessors, operand/result type agreement,
    dominance of every use by its definition (φ incoming values are
    checked against the end of their edge's source block, where the
    copy executes), translator preconditions (RPO numbering, no
    same-block φ-to-φ reads), trap-block placement, and unreachable
    blocks.

    Findings that do not make the function wrong but defeat a
    downstream mechanism (unreachable blocks pending a
    [Layout.normalize], a trap block whose extra instructions disable
    checked-arithmetic fusion) are {!Warning}s; {!run}/{!check} fail
    only on {!Error}s. *)

exception Ill_formed of string

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  func_name : string;
  block : int option;
  instr : int option;  (** index into the block's instruction array *)
  message : string;
}

val diagnostic_to_string : diagnostic -> string

val diagnostics : Func.t -> diagnostic list
(** All findings, in program order (structural phases first). Never
    raises: if the structure is too broken for the CFG/dominance
    phases to run safely, those phases are skipped and the structural
    findings are returned. *)

val errors : diagnostic list -> diagnostic list
(** Just the [Error]-severity findings. *)

val report : diagnostic list -> string
(** One rendered diagnostic per line. *)

val run : Func.t -> unit
(** @raise Ill_formed with the full error report if any
    [Error]-severity diagnostic is found. *)

val check : Func.t -> (unit, string) result

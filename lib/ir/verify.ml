(* Deep SSA well-formedness checking.

   Unlike the original first-failure checker, every check collects
   *all* violations with (function, block, instruction) context, so a
   broken pass reports the complete damage in one run. The checks are
   layered: structural properties (value ranges, unique definitions,
   branch targets, block numbering) come first because the CFG-based
   phases index by target and walk dominator trees — if the structure
   is broken the deep phases are skipped rather than crash. *)

exception Ill_formed of string

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  func_name : string;
  block : int option;
  instr : int option;
  message : string;
}

let diagnostic_to_string d =
  let where =
    match (d.block, d.instr) with
    | Some b, Some i -> Printf.sprintf " block %d, instr %d:" b i
    | Some b, None -> Printf.sprintf " block %d:" b
    | None, _ -> ""
  in
  let sev = match d.severity with Error -> "" | Warning -> " warning:" in
  Printf.sprintf "%s:%s%s %s" d.func_name sev where d.message

let errors ds = List.filter (fun d -> d.severity = Error) ds

let report ds = String.concat "\n" (List.map diagnostic_to_string ds)

let value_name = Printf.sprintf "%%%d"

let diagnostics (f : Func.t) : diagnostic list =
  let diags = ref [] in
  let emit ?block ?instr severity fmt =
    Format.kasprintf
      (fun message ->
        diags := { severity; func_name = f.Func.name; block; instr; message } :: !diags)
      fmt
  in
  let n = Func.n_blocks f in
  if n = 0 then begin
    emit Error "function has no blocks";
    List.rev !diags
  end
  else begin
    (* ---- phase 1: structure ------------------------------------------ *)
    let structure_ok = ref true in
    let nv = f.Func.n_values in
    let defined = Array.make (Stdlib.max nv 1) false in
    for p = 0 to Array.length f.Func.params - 1 do
      if p < nv then defined.(p) <- true
    done;
    let define ?instr b id what =
      if id < 0 || id >= nv then
        emit Error ~block:b ?instr "value %s out of range (%s)" (value_name id) what
      else if defined.(id) then
        emit Error ~block:b ?instr "value %s defined twice (%s)" (value_name id) what
      else defined.(id) <- true
    in
    Array.iteri
      (fun idx (b : Block.t) ->
        if b.id <> idx then begin
          emit Error ~block:idx "block id %d does not match its index" b.id;
          structure_ok := false
        end)
      f.Func.blocks;
    Array.iter
      (fun (b : Block.t) ->
        Array.iter
          (fun (p : Instr.phi) ->
            define b.id p.dst (Printf.sprintf "phi %s" (value_name p.dst)))
          b.phis;
        Array.iteri
          (fun i ins ->
            match Instr.dst_of ins with
            | Some d -> define ~instr:i b.id d "instruction result"
            | None -> ())
          b.instrs)
      f.Func.blocks;
    let check_value ?instr b what = function
      | Instr.Vreg id ->
        if id < 0 || id >= nv || not defined.(id) then
          emit Error ~block:b ?instr "use of undefined value %s (%s)" (value_name id) what
      | Instr.Imm _ | Instr.Fimm _ -> ()
    in
    let check_target b t =
      if t < 0 || t >= n then begin
        emit Error ~block:b "branch to missing block %d" t;
        structure_ok := false
      end
    in
    Array.iter
      (fun (b : Block.t) ->
        Array.iter
          (fun (p : Instr.phi) ->
            Array.iter
              (fun (_, v) ->
                check_value b.id (Printf.sprintf "phi %s incoming" (value_name p.dst)) v)
              p.incoming)
          b.phis;
        Array.iteri
          (fun i ins -> List.iter (check_value ~instr:i b.id "operand") (Instr.operands ins))
          b.instrs;
        match b.term with
        | Instr.Br t -> check_target b.id t
        | Instr.CondBr { cond; if_true; if_false } ->
          check_value b.id "branch condition" cond;
          check_target b.id if_true;
          check_target b.id if_false
        | Instr.Ret (Some v) -> check_value b.id "return value" v
        | Instr.Ret None | Instr.Abort _ -> ())
      f.Func.blocks;
    (* ---- result-type agreement --------------------------------------- *)
    let ty_of id = if id >= 0 && id < nv then Some (Func.ty_of f id) else None in
    Array.iter
      (fun (b : Block.t) ->
        Array.iter
          (fun (p : Instr.phi) ->
            match ty_of p.dst with
            | Some t when not (Types.equal t p.ty) ->
              emit Error ~block:b.id "phi %s declared %s but typed %s" (value_name p.dst)
                (Types.to_string t) (Types.to_string p.ty)
            | _ -> ())
          b.phis;
        Array.iteri
          (fun i ins ->
            match (Instr.dst_of ins, Instr.result_ty ins) with
            | Some d, Some ty -> (
              match ty_of d with
              | Some t when not (Types.equal t ty) ->
                emit Error ~block:b.id ~instr:i "value %s declared %s but instruction yields %s"
                  (value_name d) (Types.to_string t) (Types.to_string ty)
              | _ -> ())
            | _ -> ())
          b.instrs)
      f.Func.blocks;
    (* ---- operand-type agreement -------------------------------------- *)
    (* Ptr and I64 interchange freely: both are canonical 8-byte
       integers in this VM, and codegen mixes them (pointer arithmetic
       through I64, I64 bases in geps). Width or int/float mismatches
       are real errors. *)
    let compatible want got =
      Types.equal want got
      ||
      match (want, got) with
      | (Types.Ptr | Types.I64), (Types.Ptr | Types.I64) -> true
      | _ -> false
    in
    let expect ?instr b what want v =
      match v with
      | Instr.Vreg id -> (
        match ty_of id with
        | Some t when not (compatible want t) ->
          emit Error ~block:b ?instr "%s expects %s but %s is %s" what (Types.to_string want)
            (value_name id) (Types.to_string t)
        | _ -> ())
      | Instr.Imm _ ->
        if Types.is_float want then
          emit Warning ~block:b ?instr "%s expects %s but got an integer immediate" what
            (Types.to_string want)
      | Instr.Fimm _ ->
        if not (Types.is_float want) then
          emit Error ~block:b ?instr "%s expects %s but got a float immediate" what
            (Types.to_string want)
    in
    Array.iter
      (fun (b : Block.t) ->
        Array.iter
          (fun (p : Instr.phi) ->
            Array.iter
              (fun (_, v) ->
                expect b.id (Printf.sprintf "phi %s" (value_name p.dst)) p.ty v)
              p.incoming)
          b.phis;
        Array.iteri
          (fun i ins ->
            let expect = expect ~instr:i b.id in
            match ins with
            | Instr.Binop { op = _; ty; a; b = v; _ } | Instr.OvfFlag { ty; a; b = v; _ } ->
              expect "arithmetic operand" ty a;
              expect "arithmetic operand" ty v
            | Instr.Fbinop { a; b = v; _ } ->
              expect "float operand" Types.F64 a;
              expect "float operand" Types.F64 v
            | Instr.Icmp { ty; a; b = v; _ } ->
              expect "comparison operand" ty a;
              expect "comparison operand" ty v
            | Instr.Fcmp { a; b = v; _ } ->
              expect "float comparison operand" Types.F64 a;
              expect "float comparison operand" Types.F64 v
            | Instr.Select { ty; cond; a; b = v; _ } ->
              expect "select condition" Types.I1 cond;
              expect "select operand" ty a;
              expect "select operand" ty v
            | Instr.Cast { from_ty; v; _ } -> expect "cast operand" from_ty v
            | Instr.Load { addr; _ } -> expect "load address" Types.Ptr addr
            | Instr.Store { ty; addr; v } ->
              expect "store address" Types.Ptr addr;
              expect "stored value" ty v
            | Instr.Gep { base; index; _ } -> (
              expect "gep base" Types.Ptr base;
              match index with
              | Instr.Vreg id -> (
                match ty_of id with
                | Some t when Types.is_float t ->
                  emit Error ~block:b.id ~instr:i "gep index %s has float type %s"
                    (value_name id) (Types.to_string t)
                | _ -> ())
              | Instr.Fimm _ ->
                emit Error ~block:b.id ~instr:i "gep index is a float immediate"
              | Instr.Imm _ -> ())
            | Instr.Call { args; arg_tys; _ } ->
              if Array.length args <> Array.length arg_tys then
                emit Error ~block:b.id ~instr:i "call has %d args but %d arg types"
                  (Array.length args) (Array.length arg_tys)
              else Array.iteri (fun k a -> expect "call argument" arg_tys.(k) a) args)
          b.instrs;
        match b.term with
        | Instr.CondBr { cond; _ } -> expect b.id "branch condition" Types.I1 cond
        | _ -> ())
      f.Func.blocks;
    if not !structure_ok then List.rev !diags
    else begin
      (* ---- phase 2: CFG coherence -------------------------------------- *)
      let preds = Cfg.predecessors f in
      Array.iter
        (fun (b : Block.t) ->
          Array.iter
            (fun (p : Instr.phi) ->
              let incoming_preds =
                Array.to_list p.incoming |> List.map fst |> List.sort compare
              in
              let actual = List.sort compare preds.(b.id) in
              if incoming_preds <> actual then
                emit Error ~block:b.id "phi %s: incoming %s but predecessors %s"
                  (value_name p.dst)
                  (String.concat "," (List.map string_of_int incoming_preds))
                  (String.concat "," (List.map string_of_int actual)))
            b.phis)
        f.Func.blocks;
      (* φ-to-φ reads within one block: the translator lowers φs to
         *sequential* copies at the end of each predecessor, so a φ
         whose incoming value is another φ of the same block would
         observe the copied (new) value instead of the parallel-copy
         (old) one — reject it as a translator-precondition break. *)
      Array.iter
        (fun (b : Block.t) ->
          let phi_dsts = Array.map (fun (p : Instr.phi) -> p.Instr.dst) b.phis in
          Array.iter
            (fun (p : Instr.phi) ->
              Array.iter
                (fun (pred, v) ->
                  match v with
                  | Instr.Vreg id
                    when id <> p.dst && Array.exists (Int.equal id) phi_dsts ->
                    emit Error ~block:b.id
                      "phi %s reads %s (a phi of the same block) on the edge from \
                       block %d: sequential φ copies cannot preserve parallel-copy \
                       semantics"
                      (value_name p.dst) (value_name id) pred
                  | _ -> ())
                p.incoming)
            b.phis)
        f.Func.blocks;
      (* Cross-successor φ copy hazard: the translator emits the copy
         sets of *all* successors at the end of a block before the
         jump. If a φ incoming value on the edge b→s is itself the
         destination of a φ in a sibling successor s', the s' copy has
         already overwritten it by the time the b→s copy reads it
         (e.g. a loop-exit φ reading a loop-header φ from the header's
         exit edge). *)
      Array.iter
        (fun (b : Block.t) ->
          let succs = Block.successors b in
          match succs with
          | [] | [ _ ] -> ()
          | _ ->
            (* successor φ dst -> owning block *)
            let dst_owner = Hashtbl.create 8 in
            List.iter
              (fun s ->
                Array.iter
                  (fun (p : Instr.phi) ->
                    Hashtbl.replace dst_owner p.Instr.dst s)
                  (Func.block f s).phis)
              succs;
            List.iter
              (fun s ->
                Array.iter
                  (fun (p : Instr.phi) ->
                    Array.iter
                      (fun (pred, v) ->
                        match v with
                        | Instr.Vreg id when pred = b.id && id <> p.dst -> (
                          match Hashtbl.find_opt dst_owner id with
                          | Some owner when owner <> s ->
                            emit Error ~block:b.id
                              "phi %s of block %d reads %s on the edge from block \
                               %d, but %s is a phi of sibling successor %d: its \
                               copy set clobbers the value before this edge's \
                               copies read it"
                              (value_name p.dst) s (value_name id) b.id
                              (value_name id) owner
                          | _ -> ())
                        | _ -> ())
                      p.incoming)
                  (Func.block f s).phis)
              succs)
        f.Func.blocks;
      (* reachability *)
      let reachable = Array.make n false in
      let rec mark b =
        if not reachable.(b) then begin
          reachable.(b) <- true;
          List.iter mark (Block.successors (Func.block f b))
        end
      in
      mark 0;
      Array.iteri
        (fun b r -> if not r then emit Warning ~block:b "block %d is unreachable" b)
        reachable;
      (* trap placement: overflow-guard branches should target
         abort-only blocks, or the translator's checked-arithmetic
         fusion (paper Section IV-F) silently degrades *)
      let abort_only b =
        let blk = Func.block f b in
        match blk.Block.term with
        | Instr.Abort _ ->
          Array.length blk.Block.phis = 0 && Array.length blk.Block.instrs = 0
        | _ -> false
      in
      let def_site = Array.make (Stdlib.max nv 1) None in
      Array.iter
        (fun (b : Block.t) ->
          Array.iter
            (fun (p : Instr.phi) ->
              if p.dst >= 0 && p.dst < nv then def_site.(p.dst) <- Some (b.id, -1))
            b.phis;
          Array.iteri
            (fun i ins ->
              match Instr.dst_of ins with
              | Some d when d >= 0 && d < nv -> def_site.(d) <- Some (b.id, i)
              | _ -> ())
            b.instrs)
        f.Func.blocks;
      Array.iter
        (fun (b : Block.t) ->
          match b.Block.term with
          | Instr.CondBr { cond = Instr.Vreg c; if_true; if_false } -> (
            let is_ovf =
              match def_site.(c) with
              | Some (db, di) when di >= 0 -> (
                match (Func.block f db).Block.instrs.(di) with
                | Instr.OvfFlag _ -> true
                | _ -> false)
              | _ -> false
            in
            if is_ovf then
              let target_aborts t =
                match (Func.block f t).Block.term with Instr.Abort _ -> true | _ -> false
              in
              match
                if target_aborts if_true then Some if_true
                else if target_aborts if_false then Some if_false
                else None
              with
              | Some t when not (abort_only t) ->
                emit Warning ~block:b.id
                  "overflow trap block %d is not abort-only; checked-arithmetic \
                   fusion is disabled for this guard"
                  t
              | _ -> ())
          | _ -> ())
        f.Func.blocks;
      (* ---- phase 3: dominance ------------------------------------------ *)
      (* Dom.compute (and its idom-chain walks) assumes RPO numbering;
         check the cheap consequence of it first so a mis-laid-out
         function reports cleanly instead of diverging. *)
      let rpo_ok = ref true in
      for b = 1 to n - 1 do
        if reachable.(b) && not (List.exists (fun p -> p < b && reachable.(p)) preds.(b))
        then begin
          emit Error ~block:b
            "block %d is not RPO-numbered (no smaller-numbered reachable predecessor); \
             dominance checks skipped"
            b;
          rpo_ok := false
        end
      done;
      if !rpo_ok then begin
        let dom = Dom.compute f in
        (* [du] = does the definition of value [v] reach this use? *)
        let dominates_use ~same_block_ok v ~use_block ~use_instr =
          match def_site.(v) with
          | None -> true (* param, or undefined (already reported) *)
          | Some (db, di) ->
            if db = use_block then
              if same_block_ok then true
              else di < use_instr (* φ defs have di = -1 and dominate all instrs *)
            else reachable.(db) && Dom.is_ancestor dom ~ancestor:db use_block
        in
        Array.iter
          (fun (b : Block.t) ->
            if reachable.(b.id) then begin
              Array.iteri
                (fun i ins ->
                  List.iter
                    (fun v ->
                      match v with
                      | Instr.Vreg id
                        when not
                               (dominates_use ~same_block_ok:false id ~use_block:b.id
                                  ~use_instr:i) ->
                        emit Error ~block:b.id ~instr:i
                          "use of %s is not dominated by its definition" (value_name id)
                      | _ -> ())
                    (Instr.operands ins))
                b.instrs;
              Analysis.term_uses b ~use:(fun v ->
                  match v with
                  | Instr.Vreg id
                    when not
                           (dominates_use ~same_block_ok:true id ~use_block:b.id
                              ~use_instr:max_int) ->
                    emit Error ~block:b.id
                      "terminator use of %s is not dominated by its definition"
                      (value_name id)
                  | _ -> ());
              (* a φ incoming value must dominate the *end of the edge's
                 source block* — that is where the copy executes *)
              Array.iter
                (fun (p : Instr.phi) ->
                  Array.iter
                    (fun (pred, v) ->
                      match v with
                      | Instr.Vreg id
                        when reachable.(pred)
                             && not
                                  (dominates_use ~same_block_ok:true id ~use_block:pred
                                     ~use_instr:max_int) ->
                        emit Error ~block:b.id
                          "phi %s: incoming %s does not dominate the end of \
                           predecessor block %d"
                          (value_name p.dst) (value_name id) pred
                      | _ -> ())
                    p.incoming)
                b.phis
            end)
          f.Func.blocks
      end;
      List.rev !diags
    end
  end

let run f =
  let errs = errors (diagnostics f) in
  if errs <> [] then raise (Ill_formed (report errs))

let check f = match run f with () -> Ok () | exception Ill_formed m -> Error m

(** Optimization pipeline driver, mirroring the paper's two compiler
    configurations: unoptimized compilation runs no IR passes at all
    (LLVM fast-isel style), optimized compilation runs the hand-picked
    pass list HyPer uses — "peephole optimizations, reassociate
    expressions, common subexpression elimination, control flow graph
    simplification, aggressive dead code elimination" — here:
    constant folding + identities, dominator-scoped CSE, CFG
    simplification and DCE iterated to a fixpoint, followed by the
    (quadratic) block scheduler. *)

type level = O0 | O2

val set_verify_level : int -> unit
(** Set the process-wide verification level (see
    [Aeq_util.Verify_mode]; also settable via the [AEQ_VERIFY]
    environment variable). At level ≥ 1, {!optimize} runs the deep SSA
    verifier between every pass — reporting which pass broke which
    invariant — and [Translate.translate] verifies its own bytecode
    output. *)

val verify_level : unit -> int

val optimize : ?check:bool -> level -> Func.t -> unit
(** Run the pipeline in place. The function is re-laid-out
    ({!Layout.normalize}) afterwards. Well-formedness is verified
    after every pass when [check] is true (default false) or the
    process verify level is ≥ 1; a failure raises [Invalid_argument]
    with the offending pass's name and the full diagnostic report.

    @raise Invalid_argument ["pass <name> broke <func>: <report>"] *)

val run_pass : name:string -> (Func.t -> bool) -> Func.t -> bool
(** [run_pass ~name pass f] runs an arbitrary pass under the same
    verification regime as {!optimize}: when the verify level is ≥ 1,
    the deep SSA verifier runs afterwards and a violation is
    attributed to [name]. Returns the pass's changed flag. *)

type level = O0 | O2

let max_rounds = 4

let set_verify_level = Aeq_util.Verify_mode.set
let verify_level = Aeq_util.Verify_mode.get

let verify_after ~check name (f : Func.t) =
  if check || Aeq_util.Verify_mode.enabled () then
    match Verify.check f with
    | Ok () -> ()
    | Error m ->
      invalid_arg (Printf.sprintf "pass %s broke %s: %s" name f.Func.name m)

(* Per-pass wall time, one histogram series per pass name. *)
let timed name run f =
  if Aeq_obs.Control.enabled () then
    Aeq_obs.Metrics.observe_seconds
      (Aeq_obs.Metrics.histogram "aeq_pass_seconds"
         ~help:"Optimizer pass wall time per invocation."
         ~labels:[ ("pass", name) ])
      (fun () -> run f)
  else run f

let run_pass ~name pass (f : Func.t) =
  let changed = timed name pass f in
  verify_after ~check:false name f;
  changed

let optimize ?(check = false) level (f : Func.t) =
  match level with
  | O0 -> ()
  | O2 ->
    let verify_after name = verify_after ~check name f in
    let rec rounds n =
      if n > 0 then begin
        let c1 = timed "const_fold" Const_fold.run f in
        verify_after "const_fold";
        let c2 = timed "cse" Cse.run f in
        verify_after "cse";
        let c3 = timed "simplify_cfg" Simplify_cfg.run f in
        (* simplify_cfg can orphan blocks; re-establish the layout
           invariants before anything recomputes dominators *)
        Layout.normalize f;
        verify_after "simplify_cfg";
        let c4 = timed "dce" Dce.run f in
        verify_after "dce";
        if c1 || c2 || c3 || c4 then rounds (n - 1)
      end
    in
    rounds max_rounds;
    ignore (timed "sched" Sched.run f);
    Layout.normalize f;
    verify_after "sched"

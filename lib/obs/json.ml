type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing -------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_num buf x =
  if Float.is_nan x || Float.abs x = Float.infinity then
    invalid_arg "Json.to_string: non-finite number";
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" x)
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> add_num buf x
    | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          go x)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---- parsing --------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* decode to UTF-8 (BMP only; lone surrogates kept as-is) *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c when Char.code c < 0x20 -> fail "control character in string"
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some x -> Num x
    | None -> fail ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

(* ---- accessors ------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list = function Arr xs -> xs | _ -> []

let to_float = function Num x -> Some x | _ -> None

let to_str = function Str s -> Some s | _ -> None

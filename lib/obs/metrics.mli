(** The metrics registry: named counters, gauges and log-bucketed
    histograms, all safe to bump from worker domains, with snapshotting
    and Prometheus text exposition.

    A metric's identity is its name plus its label set; registering the
    same identity twice returns the same instrument, so instrumented
    code can call [counter]/[histogram] at use sites without plumbing
    handles around. Counters and histograms are [Atomic]-based — a bump
    is one [fetch_and_add] (or a CAS loop for float sums), never a
    lock. The registry table itself is mutex-guarded; registration is
    expected off the hot path.

    The process-wide {!default} registry is what the engine, scheduler,
    pass manager and driver report into, mirroring Prometheus'
    process-level model: multiple engines in one process share it. *)

type registry

type counter

type gauge

type histogram

val create : unit -> registry

val default : registry

(* ---- registration (get-or-create) ----------------------------------- *)

val counter :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  counter
(** Monotonic counter. By Prometheus convention the name should end in
    [_total]. *)

val gauge :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  gauge
(** Settable point-in-time value. *)

val gauge_fn :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  (unit -> int) ->
  unit
(** Callback gauge, polled at snapshot/render time (e.g. arena resident
    bytes). Re-registering the same identity replaces the callback, so
    a fresh engine can take over a stale engine's gauge. *)

val histogram :
  ?registry:registry ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** Cumulative histogram. The default buckets are log-spaced for
    timings in seconds: 1µs × 4^k for k = 0..14 (≈268s), plus +Inf.
    [buckets] must be strictly increasing; a trailing +Inf is implied
    and must not be passed. Bucket shape is fixed at first
    registration; later calls with a different [buckets] return the
    existing instrument unchanged. *)

(* ---- instrument operations ------------------------------------------ *)

val inc : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val set : gauge -> int -> unit

val gauge_value : gauge -> int

val observe : histogram -> float -> unit
(** Record one observation (for timings: seconds). *)

val observe_seconds : histogram -> (unit -> 'a) -> 'a
(** Time [f] and record its duration, also when it raises. *)

(* ---- snapshot & exposition ------------------------------------------ *)

type value_kind =
  | Counter of int
  | Gauge of int
  | Histogram of { buckets : (float * int) array; sum : float; count : int }
      (** [buckets] pairs each upper bound (the last is [infinity])
          with its cumulative count, Prometheus style. *)

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : value_kind;
}

val snapshot : ?registry:registry -> unit -> sample list
(** All metrics, callbacks polled, sorted by name then labels.
    Concurrent bumps may or may not be included — each atomic cell is
    read once, so a counter never goes backwards across snapshots. *)

val render_prometheus : ?registry:registry -> unit -> string
(** Prometheus text exposition format v0.0.4: [# HELP]/[# TYPE]
    headers once per family, histograms as [_bucket{le=...}]/
    [_sum]/[_count] series. *)

val exposition_content_type : string
(** The HTTP [Content-Type] for {!render_prometheus} output
    (["text/plain; version=0.0.4"]) — what the wire server's
    [/metrics] endpoint sends. *)

val reset : ?registry:registry -> unit -> unit
(** Zero all counters and histograms, for windowed scraping of
    long-running serves ([Engine.reset_stats]). Gauges keep their
    value (they describe current state, not accumulation) and callback
    gauges stay registered. *)

type span = {
  sp_name : string;
  sp_domain : int;
  sp_pipeline : int;
  sp_t0 : float;
  sp_t1 : float;
}

(* One ring per slot; a domain hashes onto a slot by id. Collisions
   just share a ring (and its mutex) — correctness never depends on
   exclusivity, only the common case is contention-free. *)
let n_slots = 64

let () = Aeq_race.declare "obs.span.ring" (Aeq_race.Lock "obs.span.lock")

type ring = {
  lock : Aeq_race.Lock.t;
  mutable buf : span array; (* length = capacity once initialised *)
  mutable size : int; (* live spans (≤ capacity) *)
  loc : Aeq_race.location; (* one per ring: slots are independent *)
}

let capacity = Atomic.make 8192

let dropped_count = Atomic.make 0

let rings =
  Array.init n_slots (fun _ ->
      {
        lock = Aeq_race.Lock.create "obs.span.lock";
        buf = [||];
        size = 0;
        loc = Aeq_race.locate "obs.span.ring";
      })

let set_capacity n = Atomic.set capacity (Stdlib.max 16 n)

let dummy =
  { sp_name = ""; sp_domain = 0; sp_pipeline = -1; sp_t0 = 0.0; sp_t1 = 0.0 }

let push sp =
  let slot = ((Domain.self () :> int) land max_int) mod n_slots in
  let r = rings.(slot) in
  Aeq_race.Lock.with_ r.lock (fun () ->
      Aeq_race.write ~site:"span.push" r.loc;
      let cap = Atomic.get capacity in
      if Array.length r.buf <> cap then begin
        (* first use, or capacity changed: start a fresh ring *)
        r.buf <- Array.make cap dummy;
        r.size <- 0
      end;
      if r.size >= cap then
        (* full: drop the new span rather than the old ones — early spans
           (parse/plan/codegen) are the rare, interesting ones; late morsel
           wraps would otherwise erase them. The drop is counted. *)
        Atomic.incr dropped_count
      else begin
        r.buf.(r.size) <- sp;
        r.size <- r.size + 1
      end)

let record ?(pipeline = -1) name ~t0 ~t1 =
  if Control.enabled () then
    push
      {
        sp_name = name;
        sp_domain = (Domain.self () :> int);
        sp_pipeline = pipeline;
        sp_t0 = t0;
        sp_t1 = t1;
      }

let with_span ?pipeline name f =
  if not (Control.enabled ()) then f ()
  else begin
    let t0 = Aeq_util.Clock.now () in
    Fun.protect
      ~finally:(fun () -> record ?pipeline name ~t0 ~t1:(Aeq_util.Clock.now ()))
      f
  end

let snapshot () =
  let acc = ref [] in
  Array.iter
    (fun r ->
      Aeq_race.Lock.with_ r.lock (fun () ->
          Aeq_race.read ~site:"span.snapshot" r.loc;
          for i = 0 to r.size - 1 do
            acc := r.buf.(i) :: !acc
          done))
    rings;
  List.sort (fun a b -> compare a.sp_t0 b.sp_t0) !acc

let clear () =
  Array.iter
    (fun r ->
      Aeq_race.Lock.with_ r.lock (fun () ->
          Aeq_race.write ~site:"span.clear" r.loc;
          r.buf <- [||];
          r.size <- 0))
    rings;
  Atomic.set dropped_count 0

let dropped () = Atomic.get dropped_count

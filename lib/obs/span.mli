(** Query-lifecycle spans: parse → plan → codegen → optimize →
    translate → compile → execute, nested per pipeline.

    Spans are recorded into per-domain ring buffers — no shared lock on
    the recording path beyond the (uncontended) per-slot mutex, bounded
    memory, and an explicit dropped counter once a ring fills (the
    early lifecycle spans are kept, later arrivals are dropped and
    counted). With
    observability disabled ({!Control.enabled} = [false]) {!with_span}
    is a single branch around calling [f].

    Nesting needs no explicit parent pointers: spans on the same domain
    that overlap in time render as a flame graph in the Chrome trace
    viewer (slices nest by containment). *)

type span = {
  sp_name : string;
  sp_domain : int;  (** the recording domain's id *)
  sp_pipeline : int;  (** -1 when the span is not pipeline-scoped *)
  sp_t0 : float;  (** absolute seconds ({!Aeq_util.Clock.now}) *)
  sp_t1 : float;
}

val with_span : ?pipeline:int -> string -> (unit -> 'a) -> 'a
(** Run [f], recording the interval under [name]. Records also when
    [f] raises (the span covers the failed attempt). No-op (one
    branch) when observability is disabled. *)

val record : ?pipeline:int -> string -> t0:float -> t1:float -> unit
(** Record an explicit interval (gated like {!with_span}). *)

val snapshot : unit -> span list
(** All retained spans across domains, sorted by start time. *)

val clear : unit -> unit

val dropped : unit -> int
(** Spans discarded because a ring was full since the last {!clear}. *)

val set_capacity : int -> unit
(** Per-domain ring capacity (default 8192, minimum 16). Takes effect
    for rings created after the call; {!clear} recreates all rings. *)

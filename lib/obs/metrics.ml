type counter = int Atomic.t

type gauge = int Atomic.t

type histogram = {
  h_bounds : float array; (* upper bounds, excluding the implicit +Inf *)
  h_counts : int Atomic.t array; (* one per bound, plus the +Inf slot *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
}

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_gauge_fn of (unit -> int) ref
  | I_histogram of histogram

type entry = {
  e_name : string;
  e_labels : (string * string) list; (* sorted by key *)
  mutable e_help : string;
  e_instrument : instrument;
}

let () = Aeq_race.declare "obs.metrics.registry" (Aeq_race.Lock "obs.metrics.lock")

type registry = {
  lock : Aeq_race.Lock.t;
  table : (string * (string * string) list, entry) Hashtbl.t;
  loc : Aeq_race.location;
}

let create () =
  {
    lock = Aeq_race.Lock.create "obs.metrics.lock";
    table = Hashtbl.create 64;
    loc = Aeq_race.locate "obs.metrics.registry";
  }

let default = create ()

let default_buckets =
  (* log-spaced for timings: 1µs × 4^k, k = 0..14 (≈268 s) *)
  Array.init 15 (fun k -> 1e-6 *. (4.0 ** float_of_int k))

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let rec atomic_add_float a d =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. d)) then atomic_add_float a d

(* Get-or-create under the registry lock. [make] builds the instrument
   on first registration; [select] projects the expected kind out (a
   name reused with a different kind is a programming error). [make]
   can raise (histogram bucket validation) — the raw lock/unlock pair
   this used to be leaked the registry lock on that path. *)
let register registry ?(help = "") ?(labels = []) name ~make ~select =
  let labels = norm_labels labels in
  let key = (name, labels) in
  let e =
    Aeq_race.Lock.with_ registry.lock (fun () ->
        Aeq_race.write ~site:"metrics.register" registry.loc;
        match Hashtbl.find_opt registry.table key with
        | Some e ->
          if help <> "" && e.e_help = "" then e.e_help <- help;
          e
        | None ->
          let e =
            { e_name = name; e_labels = labels; e_help = help; e_instrument = make () }
          in
          Hashtbl.replace registry.table key e;
          e)
  in
  select e

let kind_error name what =
  invalid_arg (Printf.sprintf "Metrics: %s is already registered as a %s" name what)

let counter ?(registry = default) ?help ?labels name =
  register registry ?help ?labels name
    ~make:(fun () -> I_counter (Atomic.make 0))
    ~select:(fun e ->
      match e.e_instrument with
      | I_counter c -> c
      | _ -> kind_error name "non-counter")

let gauge ?(registry = default) ?help ?labels name =
  register registry ?help ?labels name
    ~make:(fun () -> I_gauge (Atomic.make 0))
    ~select:(fun e ->
      match e.e_instrument with
      | I_gauge g -> g
      | _ -> kind_error name "non-gauge")

let gauge_fn ?(registry = default) ?help ?labels name f =
  let cell =
    register registry ?help ?labels name
      ~make:(fun () -> I_gauge_fn (ref f))
      ~select:(fun e ->
        match e.e_instrument with
        | I_gauge_fn r -> r
        | _ -> kind_error name "non-callback-gauge")
  in
  (* last registration wins: a fresh engine takes over the gauge *)
  cell := f

let histogram ?(registry = default) ?help ?labels ?(buckets = default_buckets) name =
  register registry ?help ?labels name
    ~make:(fun () ->
      Array.iteri
        (fun i b ->
          if i > 0 && b <= buckets.(i - 1) then
            invalid_arg "Metrics.histogram: buckets must be strictly increasing";
          if Float.abs b = Float.infinity then
            invalid_arg "Metrics.histogram: +Inf bucket is implicit")
        buckets;
      I_histogram
        {
          h_bounds = Array.copy buckets;
          h_counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.0;
          h_count = Atomic.make 0;
        })
    ~select:(fun e ->
      match e.e_instrument with
      | I_histogram h -> h
      | _ -> kind_error name "non-histogram")

let inc c = Atomic.incr c

let add c n = ignore (Atomic.fetch_and_add c n)

let value c = Atomic.get c

let set g v = Atomic.set g v

let gauge_value g = Atomic.get g

let observe h x =
  (* linear scan: bucket counts are tiny (16 by default) and bounds are
     in cache; binary search would not pay for itself *)
  let n = Array.length h.h_bounds in
  let rec slot i = if i >= n || x <= h.h_bounds.(i) then i else slot (i + 1) in
  Atomic.incr h.h_counts.(slot 0);
  atomic_add_float h.h_sum x;
  Atomic.incr h.h_count

let observe_seconds h f =
  let t0 = Aeq_util.Clock.now () in
  Fun.protect ~finally:(fun () -> observe h (Aeq_util.Clock.now () -. t0)) f

(* ---- snapshot & exposition ------------------------------------------ *)

type value_kind =
  | Counter of int
  | Gauge of int
  | Histogram of { buckets : (float * int) array; sum : float; count : int }

type sample = {
  s_name : string;
  s_help : string;
  s_labels : (string * string) list;
  s_value : value_kind;
}

let snapshot ?(registry = default) () =
  let entries =
    Aeq_race.Lock.with_ registry.lock (fun () ->
        Aeq_race.read ~site:"metrics.snapshot" registry.loc;
        Hashtbl.fold (fun _ e acc -> e :: acc) registry.table [])
  in
  let sample e =
    let v =
      match e.e_instrument with
      | I_counter c -> Counter (Atomic.get c)
      | I_gauge g -> Gauge (Atomic.get g)
      | I_gauge_fn f -> Gauge (!f ())
      | I_histogram h ->
        (* cumulative counts, Prometheus style; the last bound is +Inf *)
        let n = Array.length h.h_bounds in
        let acc = ref 0 in
        let buckets =
          Array.init (n + 1) (fun i ->
              acc := !acc + Atomic.get h.h_counts.(i);
              ((if i < n then h.h_bounds.(i) else infinity), !acc))
        in
        Histogram { buckets; sum = Atomic.get h.h_sum; count = Atomic.get h.h_count }
    in
    { s_name = e.e_name; s_help = e.e_help; s_labels = e.e_labels; s_value = v }
  in
  List.map sample entries
  |> List.sort (fun a b ->
         match String.compare a.s_name b.s_name with
         | 0 -> Stdlib.compare a.s_labels b.s_labels
         | c -> c)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
    ^ "}"

let render_bound b =
  if Float.abs b = Float.infinity then "+Inf"
  else if Float.is_integer b && Float.abs b < 1e15 then Printf.sprintf "%.0f" b
  else Printf.sprintf "%g" b

let render_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let render_prometheus ?(registry = default) () =
  let samples = snapshot ~registry () in
  let buf = Buffer.create 4096 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      if s.s_name <> !last_family then begin
        last_family := s.s_name;
        if s.s_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" s.s_name (escape_help s.s_help));
        let ty =
          match s.s_value with
          | Counter _ -> "counter"
          | Gauge _ -> "gauge"
          | Histogram _ -> "histogram"
        in
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.s_name ty)
      end;
      match s.s_value with
      | Counter v | Gauge v ->
        Buffer.add_string buf
          (Printf.sprintf "%s%s %d\n" s.s_name (render_labels s.s_labels) v)
      | Histogram { buckets; sum; count } ->
        Array.iter
          (fun (le, c) ->
            let labels = s.s_labels @ [ ("le", render_bound le) ] in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" s.s_name (render_labels labels) c))
          buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" s.s_name (render_labels s.s_labels)
             (render_float sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" s.s_name (render_labels s.s_labels) count))
    samples;
  Buffer.contents buf

let exposition_content_type = "text/plain; version=0.0.4"

let reset ?(registry = default) () =
  Aeq_race.Lock.with_ registry.lock (fun () ->
      Aeq_race.read ~site:"metrics.reset" registry.loc;
      Hashtbl.iter
        (fun _ e ->
          match e.e_instrument with
          | I_counter c -> Atomic.set c 0
          | I_gauge _ | I_gauge_fn _ -> ()
          | I_histogram h ->
            Array.iter (fun c -> Atomic.set c 0) h.h_counts;
            Atomic.set h.h_sum 0.0;
            Atomic.set h.h_count 0)
        registry.table)

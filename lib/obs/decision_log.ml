type action = Stay | Promote of string

type candidate = { c_mode : string; c_total_seconds : float; c_blacklisted : bool }

type entry = {
  d_time : float;
  d_pipeline : int;
  d_mode : string;
  d_processed : int;
  d_remaining : int;
  d_rate : float;
  d_stay_seconds : float;
  d_candidates : candidate list;
  d_action : action;
  d_reason : string;
}

(* A single mutex-guarded ring is enough: at most one worker per
   pipeline wins the evaluation slot at a time, so logging pressure is
   per-morsel at worst and uncontended in practice. *)
let lock = Mutex.create ()

let capacity = ref 8192

let entries : entry Queue.t = Queue.create ()

let dropped_count = ref 0

let log e =
  if Control.enabled () then begin
    Mutex.lock lock;
    if Queue.length entries >= !capacity then incr dropped_count
    else Queue.push e entries;
    Mutex.unlock lock
  end

let snapshot () =
  Mutex.lock lock;
  let l = List.of_seq (Queue.to_seq entries) in
  Mutex.unlock lock;
  l

let clear () =
  Mutex.lock lock;
  Queue.clear entries;
  dropped_count := 0;
  Mutex.unlock lock

let dropped () =
  Mutex.lock lock;
  let d = !dropped_count in
  Mutex.unlock lock;
  d

let set_capacity n =
  Mutex.lock lock;
  capacity := Stdlib.max 16 n;
  Mutex.unlock lock

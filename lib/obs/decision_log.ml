type action = Stay | Promote of string

type candidate = { c_mode : string; c_total_seconds : float; c_blacklisted : bool }

type entry = {
  d_time : float;
  d_pipeline : int;
  d_mode : string;
  d_processed : int;
  d_remaining : int;
  d_rate : float;
  d_stay_seconds : float;
  d_candidates : candidate list;
  d_action : action;
  d_reason : string;
}

(* A single mutex-guarded ring is enough: at most one worker per
   pipeline wins the evaluation slot at a time, so logging pressure is
   per-morsel at worst and uncontended in practice. *)
let () = Aeq_race.declare "obs.decision_log.ring" (Aeq_race.Lock "obs.decision.lock")

let lock = Aeq_race.Lock.create "obs.decision.lock"

let loc = Aeq_race.locate "obs.decision_log.ring"

let capacity = ref 8192

let entries : entry Queue.t = Queue.create ()

let dropped_count = ref 0

let log e =
  if Control.enabled () then
    Aeq_race.Lock.with_ lock (fun () ->
        Aeq_race.write ~site:"decision_log.log" loc;
        if Queue.length entries >= !capacity then incr dropped_count
        else Queue.push e entries)

let snapshot () =
  Aeq_race.Lock.with_ lock (fun () ->
      Aeq_race.read ~site:"decision_log.snapshot" loc;
      List.of_seq (Queue.to_seq entries))

let clear () =
  Aeq_race.Lock.with_ lock (fun () ->
      Aeq_race.write ~site:"decision_log.clear" loc;
      Queue.clear entries;
      dropped_count := 0)

let dropped () =
  Aeq_race.Lock.with_ lock (fun () ->
      Aeq_race.read ~site:"decision_log.dropped" loc;
      !dropped_count)

let set_capacity n =
  Aeq_race.Lock.with_ lock (fun () ->
      Aeq_race.write ~site:"decision_log.set_capacity" loc;
      capacity := Stdlib.max 16 n)

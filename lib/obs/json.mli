(** Minimal JSON tree, printer and parser.

    The repo deliberately carries no third-party JSON dependency; this
    module is just enough for the Chrome-trace exporter to emit
    well-formed documents and for tests to parse them back
    (round-trip validation). Numbers are [float]s; exotic inputs
    (surrogate pairs, 1e400) are handled the pragmatic way: decoded
    escapes are kept as replacement bytes, overflowing numbers become
    [infinity] and are rejected by the printer. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Integral numbers print without a decimal point
    (Chrome's trace viewer is picky about [ts]).
    @raise Invalid_argument on NaN/infinite numbers. *)

val parse : string -> (t, string) result
(** Strict-enough parser: one value, trailing whitespace allowed,
    anything else is an [Error] with position info. *)

val member : string -> t -> t option
(** [member k (Obj ...)] — field lookup; [None] on non-objects. *)

val to_list : t -> t list
(** The elements of an [Arr]; [] on anything else. *)

val to_float : t -> float option

val to_str : t -> string option

type event = { ev_sort : float; ev_meta : bool; ev_json : Json.t }

let base ~name ~ph ?cat ~pid ~tid ~ts_us ?(args = []) extra =
  let fields =
    [ ("name", Json.Str name); ("ph", Json.Str ph); ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int tid)); ("ts", Json.Num ts_us) ]
    @ (match cat with Some c -> [ ("cat", Json.Str c) ] | None -> [])
    @ extra
    @ (match args with [] -> [] | l -> [ ("args", Json.Obj l) ])
  in
  Json.Obj fields

let complete ~name ?cat ~pid ~tid ~ts_us ~dur_us ?args () =
  {
    ev_sort = ts_us;
    ev_meta = false;
    ev_json =
      base ~name ~ph:"X" ?cat ~pid ~tid ~ts_us ?args
        [ ("dur", Json.Num (Stdlib.max 0.0 dur_us)) ];
  }

let instant ~name ?cat ~pid ~tid ~ts_us ?args () =
  {
    ev_sort = ts_us;
    ev_meta = false;
    ev_json = base ~name ~ph:"i" ?cat ~pid ~tid ~ts_us ?args [ ("s", Json.Str "t") ];
  }

let metadata ~name ~pid ~tid args =
  {
    ev_sort = neg_infinity;
    ev_meta = true;
    ev_json = base ~name ~ph:"M" ~pid ~tid ~ts_us:0.0 ~args [];
  }

let process_name ~pid name =
  metadata ~name:"process_name" ~pid ~tid:0 [ ("name", Json.Str name) ]

let thread_name ~pid ~tid name =
  metadata ~name:"thread_name" ~pid ~tid [ ("name", Json.Str name) ]

let render events =
  let sorted =
    List.stable_sort
      (fun a b ->
        match (a.ev_meta, b.ev_meta) with
        | true, false -> -1
        | false, true -> 1
        | _ -> compare a.ev_sort b.ev_sort)
      events
  in
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.Arr (List.map (fun e -> e.ev_json) sorted));
         ("displayTimeUnit", Json.Str "ms");
       ])

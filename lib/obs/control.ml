let flag =
  Atomic.make
    (match Sys.getenv_opt "AEQ_OBS" with
    | Some "0" | None -> false
    | Some _ -> true)

let enabled () = Atomic.get flag

let set_enabled b = Atomic.set flag b

let with_enabled b f =
  let prev = Atomic.get flag in
  Atomic.set flag b;
  Fun.protect ~finally:(fun () -> Atomic.set flag prev) f

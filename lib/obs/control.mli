(** The observability master switch.

    Hot-path instrumentation (per-morsel metrics, lifecycle spans, the
    adaptive decision log) is gated on one atomic flag so that with
    observability off the only cost at a morsel boundary is a single
    load-and-branch. Cheap per-query instrumentation (counters bumped
    once per query or per compilation) stays on unconditionally.

    The flag starts [false] unless the [AEQ_OBS] environment variable
    is set to anything but ["0"]. *)

val enabled : unit -> bool
(** One atomic load; safe from any domain. *)

val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run [f] with the switch forced to the given value, restoring the
    previous value afterwards (tests, overhead measurements). *)

(** Chrome trace-event JSON builder ([chrome://tracing] /
    [ui.perfetto.dev], "JSON Array Format" with a [traceEvents]
    wrapper).

    This module is format-only: callers map their morsels, compile
    bursts, spans and decisions into {!event}s (complete ["X"] slices,
    instant ["i"] marks, process/thread-name metadata) and {!render}
    emits one well-formed document. Timestamps are microseconds on a
    caller-chosen epoch. *)

type event

val complete :
  name:string ->
  ?cat:string ->
  pid:int ->
  tid:int ->
  ts_us:float ->
  dur_us:float ->
  ?args:(string * Json.t) list ->
  unit ->
  event
(** A duration slice (["ph":"X"]). Slices on the same [pid]/[tid] that
    nest by time containment render as a flame graph. *)

val instant :
  name:string ->
  ?cat:string ->
  pid:int ->
  tid:int ->
  ts_us:float ->
  ?args:(string * Json.t) list ->
  unit ->
  event
(** A point event (["ph":"i"], thread scope). *)

val process_name : pid:int -> string -> event

val thread_name : pid:int -> tid:int -> string -> event

val render : event list -> string
(** The full document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Events are
    sorted by timestamp (metadata first) — viewers require
    monotonicity per thread lane. *)

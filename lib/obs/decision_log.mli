(** The adaptive decision log: one entry per controller evaluation
    (the paper's Fig. 7 extrapolation), so a trace explains *why* each
    mode switch — or non-switch — happened.

    Each entry captures what the controller saw (processed/remaining
    morsel counts, the measured tuple rate), what it extrapolated (the
    projected total seconds for staying put and for every candidate
    mode, with blacklisted candidates priced at infinity and flagged),
    and what it chose. Entries go into one bounded ring with a dropped
    counter; logging is gated on {!Control.enabled} so the disabled
    cost at a morsel boundary is a single branch. *)

type action = Stay | Promote of string  (** target mode name *)

type candidate = {
  c_mode : string;  (** "unoptimized" | "optimized" *)
  c_total_seconds : float;
      (** extrapolated total remaining-pipeline seconds if this mode
          were compiled now (compile latency included); [infinity] for
          blacklisted candidates *)
  c_blacklisted : bool;
}

type entry = {
  d_time : float;  (** absolute seconds ({!Aeq_util.Clock.now}) *)
  d_pipeline : int;
  d_mode : string;  (** mode the rate was measured in *)
  d_processed : int;  (** tuples processed so far *)
  d_remaining : int;  (** tuples left *)
  d_rate : float;  (** measured tuples/second (per thread average) *)
  d_stay_seconds : float;  (** projected remaining seconds if no switch *)
  d_candidates : candidate list;
  d_action : action;
  d_reason : string;
      (** why: "extrapolated win", "status quo optimal",
          "already optimized", ... *)
}

val log : entry -> unit
(** Gated on {!Control.enabled}; bounded (drops and counts overflow). *)

val snapshot : unit -> entry list
(** Retained entries in logging order. *)

val clear : unit -> unit

val dropped : unit -> int

val set_capacity : int -> unit
(** Ring capacity (default 8192, minimum 16); applies on next {!clear}
    or immediately for an empty log. *)
